//! Bit-packed complete truth tables.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// Maximum number of variables a [`TruthTable`] may have.
///
/// `2^22` bits is 512 KiB per table, which keeps even the widest benchmark
/// specification cones affordable while still covering every cone the
/// synthesis flow collapses.
pub const MAX_TT_VARS: usize = 22;

/// A complete truth table over `vars` input variables, bit-packed into
/// 64-bit words.
///
/// Bit `m` of the table is the function value for the input assignment whose
/// binary encoding is `m` (variable 0 is the least-significant bit of `m`).
/// For `vars < 6` only the low `2^vars` bits of the single word are
/// meaningful; all operations keep the unused high bits at zero so that
/// equality and hashing are structural.
///
/// # Example
///
/// ```
/// use powder_logic::TruthTable;
///
/// let a = TruthTable::var(0, 2);
/// let b = TruthTable::var(1, 2);
/// let and = a.clone() & b.clone();
/// assert_eq!(and.eval(0b11), true);
/// assert_eq!(and.eval(0b01), false);
/// assert_eq!((a | b).count_ones(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    vars: usize,
    words: Vec<u64>,
}

/// Pre-computed cofactor masks for variables 0..6 within a single word.
const VAR_MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

impl TruthTable {
    fn word_count(vars: usize) -> usize {
        if vars <= 6 {
            1
        } else {
            1 << (vars - 6)
        }
    }

    fn used_mask(vars: usize) -> u64 {
        if vars >= 6 {
            u64::MAX
        } else {
            (1u64 << (1 << vars)) - 1
        }
    }

    fn assert_vars(vars: usize) {
        assert!(
            vars <= MAX_TT_VARS,
            "truth table limited to {MAX_TT_VARS} variables, got {vars}"
        );
    }

    /// The constant-0 function over `vars` variables.
    #[must_use]
    pub fn zero(vars: usize) -> Self {
        Self::assert_vars(vars);
        TruthTable {
            vars,
            words: vec![0; Self::word_count(vars)],
        }
    }

    /// The constant-1 function over `vars` variables.
    #[must_use]
    pub fn one(vars: usize) -> Self {
        Self::assert_vars(vars);
        let mut words = vec![u64::MAX; Self::word_count(vars)];
        words[0] = Self::used_mask(vars);
        if vars < 6 {
            words[0] = Self::used_mask(vars);
        }
        TruthTable { vars, words }
    }

    /// The projection function of variable `index` over `vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `index >= vars` or `vars > MAX_TT_VARS`.
    #[must_use]
    pub fn var(index: usize, vars: usize) -> Self {
        Self::assert_vars(vars);
        assert!(
            index < vars,
            "variable {index} out of range for {vars} vars"
        );
        let n = Self::word_count(vars);
        let mut words = vec![0u64; n];
        if index < 6 {
            let pat = VAR_MASKS[index] & Self::used_mask(vars);
            words.fill(pat);
            if vars < 6 {
                words[0] = VAR_MASKS[index] & Self::used_mask(vars);
            }
        } else {
            let stride = 1usize << (index - 6);
            for (i, w) in words.iter_mut().enumerate() {
                if (i / stride) % 2 == 1 {
                    *w = u64::MAX;
                }
            }
        }
        TruthTable { vars, words }
    }

    /// Builds a table by evaluating `f` on every input assignment.
    ///
    /// # Example
    ///
    /// ```
    /// use powder_logic::TruthTable;
    /// // 3-input majority
    /// let maj = TruthTable::from_fn(3, |m| (m.count_ones() >= 2));
    /// assert_eq!(maj.count_ones(), 4);
    /// ```
    #[must_use]
    pub fn from_fn(vars: usize, mut f: impl FnMut(u64) -> bool) -> Self {
        Self::assert_vars(vars);
        let mut tt = Self::zero(vars);
        for m in 0..(1u64 << vars) {
            if f(m) {
                tt.set(m, true);
            }
        }
        tt
    }

    /// Number of input variables.
    #[must_use]
    pub fn vars(&self) -> usize {
        self.vars
    }

    /// Number of minterms (input assignments mapped to 1).
    #[must_use]
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Total number of input assignments, `2^vars`.
    #[must_use]
    pub fn num_minterms(&self) -> u64 {
        1u64 << self.vars
    }

    /// The fraction of assignments on which the function is 1.
    ///
    /// Used as the signal probability of a cell output when all inputs are
    /// independent and uniform.
    #[must_use]
    pub fn ones_fraction(&self) -> f64 {
        self.count_ones() as f64 / self.num_minterms() as f64
    }

    /// Evaluates the function on the assignment encoded by `minterm`.
    ///
    /// # Panics
    ///
    /// Panics if `minterm >= 2^vars`.
    #[must_use]
    pub fn eval(&self, minterm: u64) -> bool {
        assert!(minterm < self.num_minterms(), "minterm out of range");
        let word = (minterm >> 6) as usize;
        let bit = minterm & 63;
        (self.words[word] >> bit) & 1 == 1
    }

    /// Sets the function value for one input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `minterm >= 2^vars`.
    pub fn set(&mut self, minterm: u64, value: bool) {
        assert!(minterm < self.num_minterms(), "minterm out of range");
        let word = (minterm >> 6) as usize;
        let bit = minterm & 63;
        if value {
            self.words[word] |= 1u64 << bit;
        } else {
            self.words[word] &= !(1u64 << bit);
        }
    }

    /// True if the function is constant 0.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if the function is constant 1.
    #[must_use]
    pub fn is_one(&self) -> bool {
        *self == Self::one(self.vars)
    }

    /// True if the function depends on variable `index` (i.e. the two
    /// cofactors differ).
    #[must_use]
    pub fn depends_on(&self, index: usize) -> bool {
        self.cofactor(index, false) != self.cofactor(index, true)
    }

    /// The support of the function: indices of all variables it depends on.
    #[must_use]
    pub fn support(&self) -> Vec<usize> {
        (0..self.vars).filter(|&i| self.depends_on(i)).collect()
    }

    /// The cofactor of the function with variable `index` fixed to `value`,
    /// expressed over the *same* variable set (the fixed variable becomes
    /// irrelevant).
    ///
    /// # Panics
    ///
    /// Panics if `index >= vars`.
    #[must_use]
    pub fn cofactor(&self, index: usize, value: bool) -> Self {
        assert!(index < self.vars, "variable out of range");
        let mut out = self.clone();
        if index < 6 {
            let mask = VAR_MASKS[index];
            let shift = 1u32 << index;
            for w in &mut out.words {
                if value {
                    let hi = *w & mask;
                    *w = hi | (hi >> shift);
                } else {
                    let lo = *w & !mask;
                    *w = lo | (lo << shift);
                }
            }
            out.words[0] &= Self::used_mask(self.vars);
            if self.vars < 6 {
                out.words[0] &= Self::used_mask(self.vars);
            }
        } else {
            let stride = 1usize << (index - 6);
            let n = out.words.len();
            for block in (0..n).step_by(2 * stride) {
                for k in 0..stride {
                    let src = if value { block + stride + k } else { block + k };
                    let v = out.words[src];
                    out.words[block + k] = v;
                    out.words[block + stride + k] = v;
                }
            }
        }
        out
    }

    /// Existential quantification: `∃ x_index . f`.
    #[must_use]
    pub fn exists(&self, index: usize) -> Self {
        self.cofactor(index, false) | self.cofactor(index, true)
    }

    /// Returns a new table with the input variables permuted: input `i` of
    /// the result corresponds to input `perm[i]` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != vars` or `perm` is not a permutation.
    #[must_use]
    pub fn permute(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.vars, "permutation length mismatch");
        let mut seen = vec![false; self.vars];
        for &p in perm {
            assert!(p < self.vars && !seen[p], "invalid permutation");
            seen[p] = true;
        }
        let mut out = Self::zero(self.vars);
        for m in 0..self.num_minterms() {
            if self.eval(Self::permute_minterm(m, perm)) {
                out.set(m, true);
            }
        }
        out
    }

    fn permute_minterm(m: u64, perm: &[usize]) -> u64 {
        let mut src = 0u64;
        for (i, &p) in perm.iter().enumerate() {
            if (m >> i) & 1 == 1 {
                src |= 1u64 << p;
            }
        }
        src
    }

    /// Extends the table to `new_vars` variables; the added variables are
    /// don't-cares (the function does not depend on them).
    ///
    /// # Panics
    ///
    /// Panics if `new_vars < vars` or `new_vars > MAX_TT_VARS`.
    #[must_use]
    pub fn extend_to(&self, new_vars: usize) -> Self {
        assert!(new_vars >= self.vars, "cannot shrink a truth table");
        Self::assert_vars(new_vars);
        let mut out = Self::zero(new_vars);
        let low_mask = self.num_minterms() - 1;
        for m in 0..out.num_minterms() {
            if self.eval(m & low_mask) {
                out.set(m, true);
            }
        }
        out
    }

    /// Shrinks the table to only the variables in `keep` (which must contain
    /// the whole support). Variable `i` of the result is `keep[i]` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if the function depends on a variable outside `keep`.
    #[must_use]
    pub fn project(&self, keep: &[usize]) -> Self {
        for v in self.support() {
            assert!(keep.contains(&v), "support variable {v} not kept");
        }
        let mut out = Self::zero(keep.len());
        for m in 0..out.num_minterms() {
            let mut src = 0u64;
            for (i, &k) in keep.iter().enumerate() {
                if (m >> i) & 1 == 1 {
                    src |= 1u64 << k;
                }
            }
            if self.eval(src) {
                out.set(m, true);
            }
        }
        out
    }

    /// Iterator over all minterms (assignments mapped to 1).
    pub fn minterms(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.num_minterms()).filter(move |&m| self.eval(m))
    }

    /// Composes this function with sub-functions: `self(g_0, ..., g_{k-1})`
    /// where each `g_i` is a table over the same `inner_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `subs.len() != self.vars()` or the subs disagree on their
    /// variable count.
    #[must_use]
    pub fn compose(&self, subs: &[TruthTable]) -> TruthTable {
        assert_eq!(subs.len(), self.vars, "need one sub-function per input");
        if subs.is_empty() {
            return if self.eval(0) {
                TruthTable::one(0)
            } else {
                TruthTable::zero(0)
            };
        }
        let inner = subs[0].vars;
        let mut acc = TruthTable::zero(inner);
        for m in self.minterms() {
            let mut term = TruthTable::one(inner);
            for (i, sub) in subs.iter().enumerate() {
                assert_eq!(sub.vars, inner, "sub-function arity mismatch");
                if (m >> i) & 1 == 1 {
                    term = term & sub.clone();
                } else {
                    term = term & !sub.clone();
                }
            }
            acc = acc | term;
        }
        acc
    }

    /// The raw words backing the table (low bit of word 0 is minterm 0).
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} vars: ", self.vars)?;
        if self.vars <= 6 {
            write!(f, "{:0width$b}", self.words[0], width = 1 << self.vars)?;
        } else {
            write!(f, "{} words", self.words.len())?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Not for TruthTable {
    type Output = TruthTable;
    fn not(mut self) -> TruthTable {
        for w in &mut self.words {
            *w = !*w;
        }
        self.words[0] &= Self::used_mask(self.vars);
        if self.vars < 6 {
            self.words[0] &= Self::used_mask(self.vars);
        }
        self
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for TruthTable {
            type Output = TruthTable;
            fn $method(mut self, rhs: TruthTable) -> TruthTable {
                assert_eq!(self.vars, rhs.vars, "truth table arity mismatch");
                for (a, b) in self.words.iter_mut().zip(rhs.words.iter()) {
                    *a $op *b;
                }
                self
            }
        }
        impl $trait<&TruthTable> for &TruthTable {
            type Output = TruthTable;
            fn $method(self, rhs: &TruthTable) -> TruthTable {
                assert_eq!(self.vars, rhs.vars, "truth table arity mismatch");
                let mut out = self.clone();
                for (a, b) in out.words.iter_mut().zip(rhs.words.iter()) {
                    *a $op *b;
                }
                out
            }
        }
    };
}

impl_binop!(BitAnd, bitand, &=);
impl_binop!(BitOr, bitor, |=);
impl_binop!(BitXor, bitxor, ^=);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        for n in 0..10 {
            assert!(TruthTable::zero(n).is_zero());
            assert!(TruthTable::one(n).is_one());
            assert_eq!(TruthTable::one(n).count_ones(), 1 << n);
        }
    }

    #[test]
    fn var_projection_small_and_large() {
        for n in [1, 3, 6, 8] {
            for i in 0..n {
                let v = TruthTable::var(i, n);
                for m in 0..(1u64 << n) {
                    assert_eq!(v.eval(m), (m >> i) & 1 == 1, "n={n} i={i} m={m}");
                }
            }
        }
    }

    #[test]
    fn boolean_ops_match_bitwise_semantics() {
        let a = TruthTable::var(0, 4);
        let b = TruthTable::var(2, 4);
        let f = (a.clone() & b.clone()) | (!a.clone() ^ b.clone());
        for m in 0..16u64 {
            let av = m & 1 == 1;
            let bv = (m >> 2) & 1 == 1;
            assert_eq!(f.eval(m), (av && bv) || (av == bv));
        }
    }

    #[test]
    fn cofactor_small_var() {
        let f = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        let c1 = f.cofactor(1, true);
        for m in 0..8u64 {
            assert_eq!(c1.eval(m), (m | 0b010).count_ones() >= 2);
        }
        let c0 = f.cofactor(1, false);
        for m in 0..8u64 {
            assert_eq!(c0.eval(m), (m & !0b010u64).count_ones() >= 2);
        }
    }

    #[test]
    fn cofactor_large_var() {
        let f = TruthTable::from_fn(8, |m| (m * 2654435761) % 3 == 0);
        for idx in [6, 7] {
            for val in [false, true] {
                let c = f.cofactor(idx, val);
                for m in 0..256u64 {
                    let fixed = if val {
                        m | (1 << idx)
                    } else {
                        m & !(1u64 << idx)
                    };
                    assert_eq!(c.eval(m), f.eval(fixed), "idx={idx} val={val} m={m}");
                }
            }
        }
    }

    #[test]
    fn support_and_dependence() {
        let f = TruthTable::var(1, 5) ^ TruthTable::var(3, 5);
        assert_eq!(f.support(), vec![1, 3]);
        assert!(!f.depends_on(0));
        assert!(f.depends_on(3));
    }

    #[test]
    fn permute_swaps_inputs() {
        // f = x0 & !x1
        let f = TruthTable::var(0, 2) & !TruthTable::var(1, 2);
        let g = f.permute(&[1, 0]); // g(x0,x1) = f(x1,x0) = x1 & !x0
        assert_eq!(g, TruthTable::var(1, 2) & !TruthTable::var(0, 2));
    }

    #[test]
    fn extend_and_project_roundtrip() {
        let f = TruthTable::from_fn(3, |m| m == 5 || m == 2);
        let wide = f.extend_to(6);
        assert_eq!(wide.support(), f.support());
        let back = wide.project(&[0, 1, 2]);
        assert_eq!(back, f);
    }

    #[test]
    fn project_reorders() {
        // f over vars {1,3}: x1 | x3
        let f = TruthTable::var(1, 4) | TruthTable::var(3, 4);
        let p = f.project(&[3, 1]);
        // result var0 = old var3, var1 = old var1
        assert_eq!(p, TruthTable::var(0, 2) | TruthTable::var(1, 2));
    }

    #[test]
    fn compose_builds_nested_function() {
        // outer = AND2, inner subs = (x0 | x1, x2)
        let and2 = TruthTable::var(0, 2) & TruthTable::var(1, 2);
        let s0 = TruthTable::var(0, 3) | TruthTable::var(1, 3);
        let s1 = TruthTable::var(2, 3);
        let f = and2.compose(&[s0, s1]);
        for m in 0..8u64 {
            let expect = ((m & 1 != 0) || (m & 2 != 0)) && (m & 4 != 0);
            assert_eq!(f.eval(m), expect);
        }
    }

    #[test]
    fn exists_quantification() {
        let f = TruthTable::var(0, 2) & TruthTable::var(1, 2);
        let e = f.exists(0);
        assert_eq!(e, TruthTable::var(1, 2));
    }

    #[test]
    fn ones_fraction_probability() {
        let maj = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        assert!((maj.ones_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn binop_arity_mismatch_panics() {
        let _ = TruthTable::var(0, 2) & TruthTable::var(0, 3);
    }

    #[test]
    fn zero_var_tables() {
        let z = TruthTable::zero(0);
        let o = TruthTable::one(0);
        assert!(!z.eval(0));
        assert!(o.eval(0));
        assert_eq!(o.count_ones(), 1);
    }
}
