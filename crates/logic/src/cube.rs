//! Cubes (products of literals) over up to 64 variables.

use crate::TruthTable;
use std::fmt;

/// A cube — a conjunction of literals — over at most 64 variables.
///
/// `pos` holds the variables that appear as positive literals, `neg` those
/// that appear negated; the two masks are disjoint. A variable in neither
/// mask is absent from the cube (a "don't care" position).
///
/// # Example
///
/// ```
/// use powder_logic::Cube;
///
/// // a & !c over 3 variables
/// let c = Cube::new(0b001, 0b100);
/// assert!(c.eval(0b001));
/// assert!(c.eval(0b011));
/// assert!(!c.eval(0b101));
/// assert_eq!(c.literal_count(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    pos: u64,
    neg: u64,
}

impl Cube {
    /// Creates a cube from positive/negative literal masks.
    ///
    /// # Panics
    ///
    /// Panics if a variable appears in both masks.
    #[must_use]
    pub fn new(pos: u64, neg: u64) -> Self {
        assert_eq!(pos & neg, 0, "cube literal masks must be disjoint");
        Cube { pos, neg }
    }

    /// The universal cube (tautology, no literals).
    #[must_use]
    pub fn universe() -> Self {
        Cube { pos: 0, neg: 0 }
    }

    /// The minterm cube for assignment `m` over `vars` variables.
    #[must_use]
    pub fn minterm(m: u64, vars: usize) -> Self {
        let mask = if vars >= 64 {
            u64::MAX
        } else {
            (1u64 << vars) - 1
        };
        Cube {
            pos: m & mask,
            neg: !m & mask,
        }
    }

    /// Mask of positive literals.
    #[must_use]
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Mask of negative literals.
    #[must_use]
    pub fn neg(&self) -> u64 {
        self.neg
    }

    /// The literal of variable `v`: `Some(true)` positive, `Some(false)`
    /// negative, `None` absent.
    #[must_use]
    pub fn literal(&self, v: usize) -> Option<bool> {
        if (self.pos >> v) & 1 == 1 {
            Some(true)
        } else if (self.neg >> v) & 1 == 1 {
            Some(false)
        } else {
            None
        }
    }

    /// Returns this cube with the literal of `v` set (replacing any
    /// existing literal of `v`).
    #[must_use]
    pub fn with_literal(mut self, v: usize, positive: bool) -> Self {
        let bit = 1u64 << v;
        if positive {
            self.pos |= bit;
            self.neg &= !bit;
        } else {
            self.neg |= bit;
            self.pos &= !bit;
        }
        self
    }

    /// Returns this cube with the literal of `v` removed.
    #[must_use]
    pub fn without_literal(mut self, v: usize) -> Self {
        let bit = !(1u64 << v);
        self.pos &= bit;
        self.neg &= bit;
        self
    }

    /// Number of literals in the cube.
    #[must_use]
    pub fn literal_count(&self) -> u32 {
        (self.pos | self.neg).count_ones()
    }

    /// Mask of variables that appear (in either phase).
    #[must_use]
    pub fn support_mask(&self) -> u64 {
        self.pos | self.neg
    }

    /// Evaluates the cube on assignment `m`.
    #[must_use]
    pub fn eval(&self, m: u64) -> bool {
        (m & self.pos) == self.pos && (m & self.neg) == 0
    }

    /// True if `self` covers `other` (every assignment satisfying `other`
    /// satisfies `self`), i.e. `self`'s literals are a subset of `other`'s.
    #[must_use]
    pub fn covers(&self, other: &Cube) -> bool {
        (self.pos & other.pos) == self.pos && (self.neg & other.neg) == self.neg
    }

    /// The intersection of two cubes, or `None` if they conflict.
    #[must_use]
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        let pos = self.pos | other.pos;
        let neg = self.neg | other.neg;
        if pos & neg != 0 {
            None
        } else {
            Some(Cube { pos, neg })
        }
    }

    /// Number of variables on which the two cubes have opposite literals.
    #[must_use]
    pub fn conflict_count(&self, other: &Cube) -> u32 {
        ((self.pos & other.neg) | (self.neg & other.pos)).count_ones()
    }

    /// Merges two cubes that differ in exactly one variable's phase and
    /// agree elsewhere (the Quine–McCluskey adjacency merge); `None` if they
    /// are not mergeable.
    #[must_use]
    pub fn merge_adjacent(&self, other: &Cube) -> Option<Cube> {
        if self.support_mask() != other.support_mask() {
            return None;
        }
        let diff = (self.pos ^ other.pos) | (self.neg ^ other.neg);
        if diff.count_ones() != 1 || self.conflict_count(other) != 1 {
            return None;
        }
        let var = (self.pos & other.neg) | (self.neg & other.pos);
        Some(Cube {
            pos: self.pos & !var,
            neg: self.neg & !var,
        })
    }

    /// Algebraic cube division: `self / other` if `other`'s literals are a
    /// subset of `self`'s, giving the quotient cube; `None` otherwise.
    #[must_use]
    pub fn divide(&self, other: &Cube) -> Option<Cube> {
        if other.covers(self) {
            Some(Cube {
                pos: self.pos & !other.pos,
                neg: self.neg & !other.neg,
            })
        } else {
            None
        }
    }

    /// The common literals of two cubes (largest common sub-cube).
    #[must_use]
    pub fn common(&self, other: &Cube) -> Cube {
        Cube {
            pos: self.pos & other.pos,
            neg: self.neg & other.neg,
        }
    }

    /// Converts the cube into a truth table over `vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if the cube mentions a variable `>= vars`.
    #[must_use]
    pub fn to_tt(&self, vars: usize) -> TruthTable {
        assert!(
            vars >= 64 || self.support_mask() < (1u64 << vars),
            "cube mentions variable outside range"
        );
        let mut tt = TruthTable::one(vars);
        for v in 0..vars.min(64) {
            match self.literal(v) {
                Some(true) => tt = tt & TruthTable::var(v, vars),
                Some(false) => tt = tt & !TruthTable::var(v, vars),
                None => {}
            }
        }
        tt
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pos == 0 && self.neg == 0 {
            return write!(f, "1");
        }
        let mut first = true;
        for v in 0..64 {
            if let Some(phase) = self.literal(v) {
                if !first {
                    write!(f, "·")?;
                }
                first = false;
                if phase {
                    write!(f, "x{v}")?;
                } else {
                    write!(f, "!x{v}")?;
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_literals() {
        let c = Cube::new(0b0101, 0b1010);
        assert!(c.eval(0b0101));
        assert!(!c.eval(0b0111));
        assert_eq!(c.literal(0), Some(true));
        assert_eq!(c.literal(1), Some(false));
        assert_eq!(c.literal(10), None);
        assert_eq!(c.literal_count(), 4);
    }

    #[test]
    fn minterm_cube() {
        let c = Cube::minterm(0b101, 3);
        assert!(c.eval(0b101));
        for m in 0..8u64 {
            assert_eq!(c.eval(m), m == 0b101);
        }
    }

    #[test]
    fn covers_subset_semantics() {
        let big = Cube::new(0b001, 0);
        let small = Cube::new(0b011, 0b100);
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(Cube::universe().covers(&big));
    }

    #[test]
    fn intersect_conflict() {
        let a = Cube::new(0b1, 0);
        let b = Cube::new(0, 0b1);
        assert!(a.intersect(&b).is_none());
        let c = Cube::new(0b10, 0);
        assert_eq!(a.intersect(&c), Some(Cube::new(0b11, 0)));
    }

    #[test]
    fn merge_adjacent_qm() {
        // x0·x1 + x0·!x1 = x0
        let a = Cube::new(0b11, 0);
        let b = Cube::new(0b01, 0b10);
        assert_eq!(a.merge_adjacent(&b), Some(Cube::new(0b01, 0)));
        // different support: no merge
        let c = Cube::new(0b01, 0);
        assert_eq!(a.merge_adjacent(&c), None);
    }

    #[test]
    fn division_and_common() {
        // (x0·x1·!x2) / (x0·!x2) = x1
        let a = Cube::new(0b011, 0b100);
        let b = Cube::new(0b001, 0b100);
        assert_eq!(a.divide(&b), Some(Cube::new(0b010, 0)));
        assert_eq!(b.divide(&a), None);
        assert_eq!(a.common(&b), b);
    }

    #[test]
    fn with_without_literal() {
        let c = Cube::universe()
            .with_literal(3, true)
            .with_literal(5, false);
        assert_eq!(c.literal(3), Some(true));
        assert_eq!(c.literal(5), Some(false));
        let c2 = c.without_literal(3);
        assert_eq!(c2.literal(3), None);
        // flipping phase
        let c3 = c.with_literal(3, false);
        assert_eq!(c3.literal(3), Some(false));
    }

    #[test]
    fn to_tt_matches_eval() {
        let c = Cube::new(0b001, 0b100);
        let tt = c.to_tt(3);
        for m in 0..8u64 {
            assert_eq!(tt.eval(m), c.eval(m));
        }
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_masks_panic() {
        let _ = Cube::new(0b1, 0b1);
    }
}
