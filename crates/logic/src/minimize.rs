//! Two-level minimisation: exact Quine–McCluskey for small functions and an
//! espresso-style expand/irredundant heuristic for larger ones.
//!
//! The pre-POWDER synthesis flow ([`powder-synth`](https://example.invalid))
//! minimises each output cone before factoring, mirroring the role POSE's
//! two-level engine plays in the paper's experimental setup.

use crate::{Cube, Sop, TruthTable};
use std::collections::HashSet;

/// Functions with at most this many variables are minimised exactly with
/// Quine–McCluskey; larger ones use the heuristic path.
pub const EXACT_VAR_LIMIT: usize = 10;

/// Minimises a truth table into a compact SOP covering exactly its onset.
///
/// Dispatches to [`quine_mccluskey`] for functions of at most
/// [`EXACT_VAR_LIMIT`] variables and to [`minimize_heuristic`] otherwise.
///
/// # Example
///
/// ```
/// use powder_logic::{minimize, TruthTable};
///
/// // x0·x1 + x0·!x1  minimises to the single cube x0
/// let tt = TruthTable::var(0, 2);
/// let sop = minimize::minimize(&tt);
/// assert_eq!(sop.cube_count(), 1);
/// assert_eq!(sop.to_tt(), tt);
/// ```
#[must_use]
pub fn minimize(tt: &TruthTable) -> Sop {
    if tt.vars() <= EXACT_VAR_LIMIT {
        quine_mccluskey(tt)
    } else {
        minimize_heuristic(tt)
    }
}

/// Exact prime generation followed by a greedy essential-first cover.
///
/// The cover is exact in the primes it uses (all cubes are prime implicants)
/// and near-minimal in count: essential primes are taken first, the rest of
/// the onset is covered greedily by the prime covering the most remaining
/// minterms.
///
/// # Panics
///
/// Panics if the table has more than 16 variables (prime generation is
/// exponential; use [`minimize_heuristic`] instead).
#[must_use]
pub fn quine_mccluskey(tt: &TruthTable) -> Sop {
    assert!(tt.vars() <= 16, "QM limited to 16 variables");
    let vars = tt.vars();
    if tt.is_zero() {
        return Sop::zero(vars);
    }
    if tt.is_one() {
        return Sop::one(vars);
    }

    // Generation: repeatedly merge adjacent cubes; unmerged cubes are prime.
    let mut current: HashSet<Cube> = tt.minterms().map(|m| Cube::minterm(m, vars)).collect();
    let mut primes: HashSet<Cube> = HashSet::new();
    while !current.is_empty() {
        let cubes: Vec<Cube> = current.iter().copied().collect();
        let mut merged_flag = vec![false; cubes.len()];
        let mut next: HashSet<Cube> = HashSet::new();
        // Group by literal-support to cut the pairwise work: only cubes with
        // identical support can QM-merge.
        for i in 0..cubes.len() {
            for j in (i + 1)..cubes.len() {
                if let Some(m) = cubes[i].merge_adjacent(&cubes[j]) {
                    merged_flag[i] = true;
                    merged_flag[j] = true;
                    next.insert(m);
                }
            }
        }
        for (i, c) in cubes.iter().enumerate() {
            if !merged_flag[i] {
                primes.insert(*c);
            }
        }
        current = next;
    }

    cover_greedy(tt, primes.into_iter().collect())
}

/// Greedy essential-first unate covering of `tt`'s onset with `primes`.
fn cover_greedy(tt: &TruthTable, primes: Vec<Cube>) -> Sop {
    let vars = tt.vars();
    let minterms: Vec<u64> = tt.minterms().collect();
    // coverage[k] = indices of primes covering minterm k
    let coverage: Vec<Vec<usize>> = minterms
        .iter()
        .map(|&m| {
            primes
                .iter()
                .enumerate()
                .filter(|(_, p)| p.eval(m))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();

    let mut chosen: HashSet<usize> = HashSet::new();
    let mut covered = vec![false; minterms.len()];

    // Essential primes: sole cover of some minterm.
    for cov in &coverage {
        if cov.len() == 1 {
            chosen.insert(cov[0]);
        }
    }
    for (k, cov) in coverage.iter().enumerate() {
        if cov.iter().any(|i| chosen.contains(i)) {
            covered[k] = true;
        }
    }

    // Greedy: repeatedly take the prime covering the most uncovered minterms,
    // breaking ties toward fewer literals.
    loop {
        let remaining: Vec<usize> = (0..minterms.len()).filter(|&k| !covered[k]).collect();
        if remaining.is_empty() {
            break;
        }
        let mut best: Option<(usize, usize)> = None; // (prime index, gain)
        for (i, p) in primes.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            let gain = remaining.iter().filter(|&&k| p.eval(minterms[k])).count();
            if gain == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bi, bg)) => {
                    gain > bg || (gain == bg && p.literal_count() < primes[bi].literal_count())
                }
            };
            if better {
                best = Some((i, gain));
            }
        }
        let (i, _) = best.expect("primes must cover the onset");
        chosen.insert(i);
        for &k in &remaining {
            if primes[i].eval(minterms[k]) {
                covered[k] = true;
            }
        }
    }

    let mut cubes: Vec<Cube> = chosen.into_iter().map(|i| primes[i]).collect();
    cubes.sort();
    Sop::from_cubes(vars, cubes)
}

/// Espresso-style heuristic minimisation: EXPAND each cube maximally against
/// the offset, then make the cover IRREDUNDANT, iterating to a fixpoint.
///
/// The truth table itself serves as the containment oracle, so the result is
/// always a correct cover of the onset.
#[must_use]
pub fn minimize_heuristic(tt: &TruthTable) -> Sop {
    let vars = tt.vars();
    if tt.is_zero() {
        return Sop::zero(vars);
    }
    if tt.is_one() {
        return Sop::one(vars);
    }
    let mut cover: Vec<Cube> = tt.minterms().map(|m| Cube::minterm(m, vars)).collect();
    let mut last_cost = u64::MAX;
    for _ in 0..4 {
        // EXPAND: drop literals while the cube stays inside the onset.
        for c in &mut cover {
            let mut cube = *c;
            for v in 0..vars {
                if cube.literal(v).is_some() {
                    let cand = cube.without_literal(v);
                    if cube_in_onset(&cand, tt) {
                        cube = cand;
                    }
                }
            }
            *c = cube;
        }
        // IRREDUNDANT: single-cube containment, then drop cubes whose
        // minterms are all covered by the rest.
        let mut sop = Sop::from_cubes(vars, cover.clone());
        sop.remove_contained();
        cover = sop.cubes().to_vec();
        let mut i = 0;
        while i < cover.len() {
            let candidate = cover[i];
            let others: Vec<Cube> = cover
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, c)| *c)
                .collect();
            if cube_covered_by(&candidate, &others) {
                cover.remove(i);
            } else {
                i += 1;
            }
        }
        let cost: u64 = cover.iter().map(|c| u64::from(c.literal_count())).sum();
        if cost >= last_cost {
            break;
        }
        last_cost = cost;
    }
    cover.sort();
    Sop::from_cubes(vars, cover)
}

/// True if every minterm of `cube` is in the onset of `tt`.
fn cube_in_onset(cube: &Cube, tt: &TruthTable) -> bool {
    let vars = tt.vars();
    let free: Vec<usize> = (0..vars).filter(|&v| cube.literal(v).is_none()).collect();
    if free.len() > 24 {
        // Too many points to enumerate; conservatively reject the expansion.
        return false;
    }
    let base = cube.pos();
    for k in 0..(1u64 << free.len()) {
        let mut m = base;
        for (bit, &v) in free.iter().enumerate() {
            if (k >> bit) & 1 == 1 {
                m |= 1 << v;
            }
        }
        if !tt.eval(m) {
            return false;
        }
    }
    true
}

/// True if every minterm of `cube` is covered by some cube in `others`.
fn cube_covered_by(cube: &Cube, others: &[Cube]) -> bool {
    let free: Vec<usize> = (0..64)
        .filter(|&v| cube.literal(v).is_none())
        .take_while(|&v| v < 64)
        .collect();
    // Enumerate only over variables any cube actually mentions; unmentioned
    // variables cannot affect coverage.
    let relevant: Vec<usize> = free
        .iter()
        .copied()
        .filter(|&v| others.iter().any(|o| o.literal(v).is_some()))
        .collect();
    if relevant.len() > 24 {
        return false;
    }
    let base = cube.pos();
    for k in 0..(1u64 << relevant.len()) {
        let mut m = base;
        for (bit, &v) in relevant.iter().enumerate() {
            if (k >> bit) & 1 == 1 {
                m |= 1 << v;
            }
        }
        if !others.iter().any(|o| o.eval(m)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_exact_cover(tt: &TruthTable, sop: &Sop) {
        assert_eq!(&sop.to_tt(), tt, "cover must equal the onset");
    }

    #[test]
    fn qm_classic_example() {
        // f(a,b) = a·b + a·!b = a
        let tt = TruthTable::var(0, 2);
        let sop = quine_mccluskey(&tt);
        assert_eq!(sop.cubes(), &[Cube::new(0b01, 0)]);
    }

    #[test]
    fn qm_xor_is_irreducible() {
        let tt = TruthTable::var(0, 2) ^ TruthTable::var(1, 2);
        let sop = quine_mccluskey(&tt);
        assert_eq!(sop.cube_count(), 2);
        check_exact_cover(&tt, &sop);
    }

    #[test]
    fn qm_majority() {
        let tt = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        let sop = quine_mccluskey(&tt);
        assert_eq!(sop.cube_count(), 3); // ab + ac + bc
        assert_eq!(sop.literal_count(), 6);
        check_exact_cover(&tt, &sop);
    }

    #[test]
    fn qm_constants() {
        assert!(quine_mccluskey(&TruthTable::zero(4)).is_empty());
        assert_eq!(quine_mccluskey(&TruthTable::one(4)).cube_count(), 1);
    }

    #[test]
    fn qm_random_functions_cover_exactly() {
        let mut state = 0x9E3779B97F4A7C15u64;
        for vars in 1..=7 {
            for _ in 0..5 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let seed = state;
                let tt = TruthTable::from_fn(vars, |m| {
                    (seed.rotate_left((m % 63) as u32) ^ m)
                        .count_ones()
                        .is_multiple_of(2)
                });
                let sop = quine_mccluskey(&tt);
                check_exact_cover(&tt, &sop);
                // no worse than minterm canonical form
                assert!(sop.cube_count() as u64 <= tt.count_ones().max(1));
            }
        }
    }

    #[test]
    fn heuristic_matches_onset() {
        let tt = TruthTable::from_fn(11, |m| (m ^ (m >> 3)).count_ones() % 3 == 0);
        let sop = minimize_heuristic(&tt);
        check_exact_cover(&tt, &sop);
        assert!(sop.cube_count() as u64 <= tt.count_ones());
    }

    #[test]
    fn heuristic_simplifies_cube_pairs() {
        // onset = everything except one point: heuristic should do far
        // better than 2^6-1 minterms.
        let tt = TruthTable::from_fn(6, |m| m != 0);
        let sop = minimize_heuristic(&tt);
        check_exact_cover(&tt, &sop);
        assert!(sop.cube_count() <= 6);
    }

    #[test]
    fn dispatcher_picks_both_paths() {
        let small = TruthTable::from_fn(4, |m| m % 3 == 0);
        check_exact_cover(&small, &minimize(&small));
        let large = TruthTable::from_fn(EXACT_VAR_LIMIT + 1, |m| m % 5 == 0);
        check_exact_cover(&large, &minimize(&large));
    }
}
