//! Boolean function layer for the POWDER reproduction.
//!
//! This crate provides the function representations every other layer is
//! built on:
//!
//! * [`TruthTable`] — a bit-packed complete truth table over up to
//!   [`MAX_TT_VARS`] variables. Library cells, cut functions and benchmark
//!   specifications are all truth tables.
//! * [`Cube`] / [`Sop`] — cube-literal and sum-of-products representations
//!   used by two-level minimisation and algebraic factoring.
//! * [`minimize`] — exact (Quine–McCluskey) and heuristic (espresso-style
//!   expand/irredundant) two-level minimisation.
//! * [`kernel`] — algebraic division and kernel extraction used by the
//!   multi-level factoring step of the pre-POWDER synthesis flow.
//!
//! # Example
//!
//! ```
//! use powder_logic::TruthTable;
//!
//! let a = TruthTable::var(0, 3);
//! let b = TruthTable::var(1, 3);
//! let c = TruthTable::var(2, 3);
//! // f = (a ^ c) & b, the function of the paper's Figure 2 circuit A.
//! let f = (a ^ c) & b;
//! assert_eq!(f.count_ones(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cube;
pub mod kernel;
pub mod minimize;
pub mod pla;
#[cfg(test)]
mod proptests;
mod sop;
mod tt;

pub use cube::Cube;
pub use sop::Sop;
pub use tt::{TruthTable, MAX_TT_VARS};
