//! Property-based tests of the Boolean layer.

use crate::{kernel, minimize, Cube, Sop, TruthTable};
use proptest::prelude::*;

fn arb_tt(vars: usize) -> impl Strategy<Value = TruthTable> {
    proptest::collection::vec(any::<u64>(), TruthTable::zero(vars).as_words().len()).prop_map(
        move |words| {
            let mut tt = TruthTable::zero(vars);
            for (m, chunk) in words.iter().enumerate() {
                for b in 0..64u64 {
                    let idx = m as u64 * 64 + b;
                    if idx < tt.num_minterms() && (chunk >> b) & 1 == 1 {
                        tt.set(idx, true);
                    }
                }
            }
            tt
        },
    )
}

fn arb_cube(vars: usize) -> impl Strategy<Value = Cube> {
    let mask = if vars >= 64 {
        u64::MAX
    } else {
        (1u64 << vars) - 1
    };
    (any::<u64>(), any::<u64>()).prop_map(move |(p, n)| {
        let pos = p & mask;
        let neg = n & mask & !pos;
        Cube::new(pos, neg)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn demorgan_holds(a in arb_tt(5), b in arb_tt(5)) {
        prop_assert_eq!(!(a.clone() & b.clone()), !a.clone() | !b.clone());
    }

    #[test]
    fn cofactor_shannon_expansion(f in arb_tt(6), var in 0usize..6) {
        let c0 = f.cofactor(var, false);
        let c1 = f.cofactor(var, true);
        let x = TruthTable::var(var, 6);
        prop_assert_eq!((x.clone() & c1) | (!x & c0), f);
    }

    #[test]
    fn permute_roundtrip(f in arb_tt(5), seed in any::<u64>()) {
        // Build a permutation from the seed.
        let mut perm: Vec<usize> = (0..5).collect();
        let mut s = seed;
        for i in (1..5).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            perm.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut inv = vec![0; 5];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        prop_assert_eq!(f.permute(&perm).permute(&inv), f);
    }

    #[test]
    fn cube_cover_matches_eval(c in arb_cube(6), d in arb_cube(6)) {
        // covers ⇔ every satisfying assignment of d satisfies c
        let c_tt = c.to_tt(6);
        let d_tt = d.to_tt(6);
        let covers_semantically = (d_tt.clone() & !c_tt.clone()).is_zero();
        prop_assert_eq!(c.covers(&d), covers_semantically, "{:?} vs {:?}", c, d);
    }

    #[test]
    fn cube_intersection_is_conjunction(c in arb_cube(6), d in arb_cube(6)) {
        let want = c.to_tt(6) & d.to_tt(6);
        match c.intersect(&d) {
            Some(i) => prop_assert_eq!(i.to_tt(6), want),
            None => prop_assert!(want.is_zero()),
        }
    }

    #[test]
    fn qm_and_heuristic_cover_same_function(f in arb_tt(6)) {
        let exact = minimize::quine_mccluskey(&f);
        let heur = minimize::minimize_heuristic(&f);
        prop_assert_eq!(exact.to_tt(), f.clone());
        prop_assert_eq!(heur.to_tt(), f.clone());
        // exact cover never uses more cubes than the canonical minterm form
        prop_assert!(exact.cube_count() as u64 <= f.count_ones().max(1));
    }

    #[test]
    fn algebraic_division_identity(f in arb_tt(5)) {
        let sop = minimize::minimize(&f);
        prop_assume!(sop.cube_count() >= 2);
        for pair in kernel::kernels(&sop).into_iter().take(4) {
            let (q, r) = sop.algebraic_divide(&pair.kernel);
            prop_assume!(!q.is_empty());
            // f == kernel·q + r as functions
            let mut product = Sop::zero(5);
            for kc in pair.kernel.cubes() {
                for qc in q.cubes() {
                    if let Some(c) = kc.intersect(qc) {
                        product.push(c);
                    }
                }
            }
            let rebuilt = product.to_tt() | r.to_tt();
            prop_assert_eq!(rebuilt, sop.to_tt());
        }
    }

    #[test]
    fn sop_tt_roundtrip(f in arb_tt(7)) {
        let sop = Sop::from_tt_minterms(&f);
        prop_assert_eq!(sop.to_tt(), f);
    }

    #[test]
    fn compose_respects_semantics(outer in arb_tt(3), s0 in arb_tt(4), s1 in arb_tt(4), s2 in arb_tt(4)) {
        let composed = outer.compose(&[s0.clone(), s1.clone(), s2.clone()]);
        for m in 0..16u64 {
            let inner = u64::from(s0.eval(m))
                | (u64::from(s1.eval(m)) << 1)
                | (u64::from(s2.eval(m)) << 2);
            prop_assert_eq!(composed.eval(m), outer.eval(inner));
        }
    }
}
