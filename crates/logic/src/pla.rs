//! Reader/writer for the Berkeley/espresso `.pla` two-level format —
//! the format the MCNC two-level benchmarks were distributed in.
//!
//! Supported directives: `.i`, `.o`, `.ilb`, `.ob`, `.p` (ignored), `.type
//! fr|f` (the default `f`/`fr` semantics: a `1` output bit puts the cube in
//! that output's ON-set; `0`/`~` bits are ignored), `.e`/`.end`.
//!
//! # Example
//!
//! ```
//! use powder_logic::pla::{parse_pla, write_pla};
//!
//! let pla = parse_pla("\
//! .i 3
//! .o 2
//! 1-0 10
//! -11 01
//! .e
//! ")?;
//! assert_eq!(pla.inputs.len(), 3);
//! assert_eq!(pla.outputs.len(), 2);
//! let text = write_pla(&pla);
//! assert!(text.contains(".i 3"));
//! # Ok::<(), powder_logic::pla::ParsePlaError>(())
//! ```

use crate::{Cube, Sop};
use std::fmt;
use std::fmt::Write as _;

/// A parsed multi-output PLA.
#[derive(Clone, Debug, PartialEq)]
pub struct Pla {
    /// Input labels (`.ilb` or synthesized `x0..`).
    pub inputs: Vec<String>,
    /// Output labels (`.ob` or synthesized `y0..`).
    pub outputs: Vec<String>,
    /// One ON-set SOP per output, over the inputs.
    pub on_sets: Vec<Sop>,
}

/// Error produced while parsing `.pla` text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePlaError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for ParsePlaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pla line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParsePlaError {}

/// Parses `.pla` text.
///
/// # Errors
///
/// Returns [`ParsePlaError`] on malformed directives, rows of the wrong
/// width, unknown plane characters, or missing `.i`/`.o`.
pub fn parse_pla(src: &str) -> Result<Pla, ParsePlaError> {
    let err = |line: usize, message: String| ParsePlaError { line, message };
    let mut ni: Option<usize> = None;
    let mut no: Option<usize> = None;
    let mut ilb: Option<Vec<String>> = None;
    let mut ob: Option<Vec<String>> = None;
    let mut rows: Vec<(usize, String, String)> = Vec::new();

    for (lineno0, raw) in src.lines().enumerate() {
        let lineno = lineno0 + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let mut toks = rest.split_whitespace();
            match toks.next() {
                Some("i") => {
                    ni = Some(
                        toks.next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| err(lineno, ".i needs a count".into()))?,
                    )
                }
                Some("o") => {
                    no = Some(
                        toks.next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| err(lineno, ".o needs a count".into()))?,
                    )
                }
                Some("ilb") => ilb = Some(toks.map(str::to_string).collect()),
                Some("ob") => ob = Some(toks.map(str::to_string).collect()),
                Some("p") | Some("type") | Some("phase") | Some("pair") => {}
                Some("e") | Some("end") => break,
                Some(other) => return Err(err(lineno, format!("unsupported directive .{other}"))),
                None => return Err(err(lineno, "bare '.'".into())),
            }
        } else {
            let mut parts = line.split_whitespace();
            let inp = parts
                .next()
                .ok_or_else(|| err(lineno, "missing input plane".into()))?
                .to_string();
            let out = parts
                .next()
                .ok_or_else(|| err(lineno, "missing output plane".into()))?
                .to_string();
            rows.push((lineno, inp, out));
        }
    }

    let ni = ni.ok_or_else(|| err(0, "missing .i".into()))?;
    let no = no.ok_or_else(|| err(0, "missing .o".into()))?;
    if ni > 64 {
        return Err(err(
            0,
            format!("{ni} inputs exceed the 64-variable cube limit"),
        ));
    }
    let inputs = match ilb {
        Some(v) if v.len() == ni => v,
        Some(v) => {
            return Err(err(
                0,
                format!(".ilb lists {} names, .i says {ni}", v.len()),
            ))
        }
        None => (0..ni).map(|i| format!("x{i}")).collect(),
    };
    let outputs = match ob {
        Some(v) if v.len() == no => v,
        Some(v) => return Err(err(0, format!(".ob lists {} names, .o says {no}", v.len()))),
        None => (0..no).map(|o| format!("y{o}")).collect(),
    };

    let mut on_sets = vec![Sop::zero(ni); no];
    for (lineno, inp, out) in rows {
        if inp.len() != ni {
            return Err(err(lineno, format!("input plane {inp:?} is not {ni} wide")));
        }
        if out.len() != no {
            return Err(err(
                lineno,
                format!("output plane {out:?} is not {no} wide"),
            ));
        }
        let mut cube = Cube::universe();
        for (v, ch) in inp.chars().enumerate() {
            match ch {
                '1' => cube = cube.with_literal(v, true),
                '0' => cube = cube.with_literal(v, false),
                '-' | '2' => {}
                other => return Err(err(lineno, format!("bad input-plane character {other:?}"))),
            }
        }
        for (o, ch) in out.chars().enumerate() {
            match ch {
                '1' | '4' => on_sets[o].push(cube),
                '0' | '~' | '-' | '2' => {}
                other => return Err(err(lineno, format!("bad output-plane character {other:?}"))),
            }
        }
    }
    Ok(Pla {
        inputs,
        outputs,
        on_sets,
    })
}

/// Serialises a [`Pla`] back to `.pla` text (type `fr` rows, ON-set only).
#[must_use]
pub fn write_pla(pla: &Pla) -> String {
    let ni = pla.inputs.len();
    let no = pla.outputs.len();
    let mut s = String::new();
    let _ = writeln!(s, ".i {ni}");
    let _ = writeln!(s, ".o {no}");
    let _ = writeln!(s, ".ilb {}", pla.inputs.join(" "));
    let _ = writeln!(s, ".ob {}", pla.outputs.join(" "));
    // Merge identical cubes across outputs into shared rows.
    let mut rows: Vec<(Cube, Vec<bool>)> = Vec::new();
    for (o, sop) in pla.on_sets.iter().enumerate() {
        for &cube in sop.cubes() {
            match rows.iter_mut().find(|(c, _)| *c == cube) {
                Some((_, mask)) => mask[o] = true,
                None => {
                    let mut mask = vec![false; no];
                    mask[o] = true;
                    rows.push((cube, mask));
                }
            }
        }
    }
    let _ = writeln!(s, ".p {}", rows.len());
    for (cube, mask) in rows {
        let mut inp = String::with_capacity(ni);
        for v in 0..ni {
            inp.push(match cube.literal(v) {
                Some(true) => '1',
                Some(false) => '0',
                None => '-',
            });
        }
        let out: String = mask.iter().map(|&b| if b { '1' } else { '0' }).collect();
        let _ = writeln!(s, "{inp} {out}");
    }
    s.push_str(".e\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let pla = parse_pla(".i 2\n.o 1\n11 1\n00 1\n.e\n").unwrap();
        assert_eq!(pla.inputs, vec!["x0", "x1"]);
        let f = &pla.on_sets[0];
        // xnor
        assert!(f.eval(0b00) && f.eval(0b11));
        assert!(!f.eval(0b01) && !f.eval(0b10));
    }

    #[test]
    fn labels_and_dontcares() {
        let pla = parse_pla(".i 3\n.o 2\n.ilb a b c\n.ob f g\n1-0 10\n-11 01\n.e\n").unwrap();
        assert_eq!(pla.inputs, vec!["a", "b", "c"]);
        assert_eq!(pla.outputs, vec!["f", "g"]);
        assert!(pla.on_sets[0].eval(0b001)); // a=1,b=-,c=0
        assert!(pla.on_sets[0].eval(0b011));
        assert!(!pla.on_sets[0].eval(0b101));
        assert!(pla.on_sets[1].eval(0b110)); // b=1,c=1
    }

    #[test]
    fn roundtrip_preserves_functions() {
        let src = ".i 4\n.o 3\n1--0 110\n01-- 011\n--11 100\n0000 001\n.e\n";
        let pla = parse_pla(src).unwrap();
        let back = parse_pla(&write_pla(&pla)).unwrap();
        assert_eq!(back.inputs, pla.inputs);
        assert_eq!(back.outputs, pla.outputs);
        for (a, b) in pla.on_sets.iter().zip(&back.on_sets) {
            assert_eq!(a.to_tt(), b.to_tt());
        }
    }

    #[test]
    fn shared_rows_merge_on_write() {
        let src = ".i 2\n.o 2\n11 11\n.e\n";
        let pla = parse_pla(src).unwrap();
        let text = write_pla(&pla);
        assert!(text.contains(".p 1"), "{text}");
    }

    #[test]
    fn errors() {
        assert!(parse_pla("11 1\n").is_err(), "missing .i/.o");
        assert!(parse_pla(".i 2\n.o 1\n111 1\n.e").is_err(), "row width");
        assert!(parse_pla(".i 2\n.o 1\n1x 1\n.e").is_err(), "bad char");
        assert!(
            parse_pla(".i 2\n.o 1\n.ilb a\n11 1\n.e").is_err(),
            "ilb arity"
        );
        assert!(parse_pla(".i 2\n.o 1\n.bogus\n.e").is_err(), "directive");
    }
}
