//! Algebraic kernels and factoring support.
//!
//! Kernels (cube-free primary divisors) are the classic currency of
//! multi-level logic optimisation: extracting a good kernel as a new
//! intermediate signal shares logic between expressions. The pre-POWDER
//! synthesis flow uses [`kernels`] and [`best_factor`] to factor minimised
//! SOPs before decomposition and mapping.

use crate::{Cube, Sop};

/// A kernel/co-kernel pair of an SOP: `expr = co_kernel · kernel + rest`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelPair {
    /// The cube that divides the expression to yield the kernel.
    pub co_kernel: Cube,
    /// The cube-free quotient.
    pub kernel: Sop,
}

/// True if no single literal appears in every cube (the SOP is *cube-free*).
#[must_use]
pub fn is_cube_free(sop: &Sop) -> bool {
    if sop.cube_count() < 2 {
        return sop.cube_count() == 1 && sop.cubes()[0].literal_count() == 0
            || sop.cube_count() >= 2;
    }
    common_cube(sop).literal_count() == 0
}

/// The largest cube dividing every cube of the SOP.
#[must_use]
pub fn common_cube(sop: &Sop) -> Cube {
    let mut iter = sop.cubes().iter();
    let first = match iter.next() {
        Some(c) => *c,
        None => return Cube::universe(),
    };
    iter.fold(first, |acc, c| acc.common(c))
}

/// Enumerates the kernels of `sop` (level-0 and higher), with their
/// co-kernels. The expression itself is included if it is cube-free and has
/// at least two cubes.
///
/// Uses the standard recursive kernel extraction over the literal set,
/// pruning revisited literals. Intended for the modest cube counts produced
/// by two-level minimisation of benchmark cones.
///
/// # Example
///
/// ```
/// use powder_logic::{Cube, Sop, kernel::kernels};
///
/// // f = a·c + a·d + b·c + b·d  has kernel (c + d) with co-kernels a and b,
/// // and kernel (a + b) with co-kernels c and d.
/// let f = Sop::from_cubes(4, vec![
///     Cube::new(0b0101, 0), Cube::new(0b1001, 0),
///     Cube::new(0b0110, 0), Cube::new(0b1010, 0),
/// ]);
/// let ks = kernels(&f);
/// assert!(ks.iter().any(|k| k.kernel.cube_count() == 2));
/// ```
#[must_use]
pub fn kernels(sop: &Sop) -> Vec<KernelPair> {
    let mut out = Vec::new();
    let support = sop.support_mask();
    let literals: Vec<(usize, bool)> = (0..64)
        .filter(|&v| (support >> v) & 1 == 1)
        .flat_map(|v| [(v, true), (v, false)])
        .collect();
    kernels_rec(sop, Cube::universe(), 0, &literals, &mut out);
    // The whole expression, if cube-free.
    if sop.cube_count() >= 2 && common_cube(sop).literal_count() == 0 {
        let pair = KernelPair {
            co_kernel: Cube::universe(),
            kernel: sop.clone(),
        };
        if !out.contains(&pair) {
            out.push(pair);
        }
    }
    out
}

fn kernels_rec(
    sop: &Sop,
    co_kernel: Cube,
    start: usize,
    literals: &[(usize, bool)],
    out: &mut Vec<KernelPair>,
) {
    for (idx, &(v, phase)) in literals.iter().enumerate().skip(start) {
        let lit_cube = Cube::universe().with_literal(v, phase);
        // Cubes containing this literal.
        let with_lit: Vec<Cube> = sop
            .cubes()
            .iter()
            .filter(|c| c.literal(v) == Some(phase))
            .copied()
            .collect();
        if with_lit.len() < 2 {
            continue;
        }
        let sub = Sop::from_cubes(sop.vars(), with_lit);
        let (quot, _) = sub.algebraic_divide(&Sop::from_cubes(sop.vars(), vec![lit_cube]));
        if quot.cube_count() < 2 {
            continue;
        }
        // Make cube-free: divide out the common cube.
        let cc = common_cube(&quot);
        let free: Sop = if cc.literal_count() > 0 {
            let (q, _) = quot.algebraic_divide(&Sop::from_cubes(sop.vars(), vec![cc]));
            q
        } else {
            quot
        };
        if free.cube_count() < 2 {
            continue;
        }
        let new_co = co_kernel
            .intersect(&lit_cube)
            .and_then(|c| c.intersect(&cc));
        let Some(new_co) = new_co else { continue };
        let pair = KernelPair {
            co_kernel: new_co,
            kernel: free.clone(),
        };
        if !out.contains(&pair) {
            out.push(pair);
        }
        kernels_rec(&free, new_co, idx + 1, literals, out);
    }
}

/// Value of factoring `kernel` out of `sop`: the literal-count saving if the
/// kernel were implemented once and substituted everywhere it divides.
#[must_use]
pub fn factoring_value(sop: &Sop, kernel: &Sop) -> i64 {
    let (quot, rest) = sop.algebraic_divide(kernel);
    if quot.is_empty() {
        return 0;
    }
    let before = i64::from(sop.literal_count());
    // after: quotient cubes each gain one literal (the new signal), plus the
    // kernel body implemented once, plus the remainder.
    let after = i64::from(quot.literal_count())
        + quot.cube_count() as i64
        + i64::from(kernel.literal_count())
        + i64::from(rest.literal_count());
    before - after
}

/// Picks the kernel of `sop` with the highest [`factoring_value`], if any
/// has positive value.
#[must_use]
pub fn best_factor(sop: &Sop) -> Option<KernelPair> {
    kernels(sop)
        .into_iter()
        .filter(|k| k.kernel.cube_count() >= 2)
        .map(|k| {
            let v = factoring_value(sop, &k.kernel);
            (k, v)
        })
        .filter(|&(_, v)| v > 0)
        .max_by_key(|&(_, v)| v)
        .map(|(k, _)| k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f_shared() -> Sop {
        // f = a·c + a·d + b·c + b·d + e
        Sop::from_cubes(
            5,
            vec![
                Cube::new(0b00101, 0),
                Cube::new(0b01001, 0),
                Cube::new(0b00110, 0),
                Cube::new(0b01010, 0),
                Cube::new(0b10000, 0),
            ],
        )
    }

    #[test]
    fn common_cube_of_single_product() {
        let f = Sop::from_cubes(3, vec![Cube::new(0b011, 0b100)]);
        assert_eq!(common_cube(&f), Cube::new(0b011, 0b100));
    }

    #[test]
    fn kernels_of_shared_expression() {
        let ks = kernels(&f_shared());
        // (c + d) and (a + b) must both appear as kernels.
        let cd = Sop::from_cubes(5, vec![Cube::new(0b00100, 0), Cube::new(0b01000, 0)]);
        let ab = Sop::from_cubes(5, vec![Cube::new(0b00001, 0), Cube::new(0b00010, 0)]);
        assert!(
            ks.iter().any(|k| k.kernel == cd),
            "missing kernel c+d: {ks:?}"
        );
        assert!(
            ks.iter().any(|k| k.kernel == ab),
            "missing kernel a+b: {ks:?}"
        );
    }

    #[test]
    fn best_factor_saves_literals() {
        let f = f_shared();
        let best = best_factor(&f).expect("shared expression must factor");
        assert!(factoring_value(&f, &best.kernel) > 0);
    }

    #[test]
    fn no_kernel_in_single_cube() {
        let f = Sop::from_cubes(3, vec![Cube::new(0b111, 0)]);
        assert!(best_factor(&f).is_none());
    }

    #[test]
    fn factoring_value_zero_when_no_division() {
        let f = Sop::from_cubes(3, vec![Cube::new(0b001, 0)]);
        let k = Sop::from_cubes(3, vec![Cube::new(0b010, 0), Cube::new(0b100, 0)]);
        assert_eq!(factoring_value(&f, &k), 0);
    }
}
