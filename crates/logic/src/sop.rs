//! Sum-of-products (disjunction of cubes) representation.

use crate::{Cube, TruthTable};
use std::fmt;

/// A sum-of-products: a disjunction of [`Cube`]s over a fixed variable
/// count (at most 64).
///
/// # Example
///
/// ```
/// use powder_logic::{Cube, Sop};
///
/// // f = x0·x1 + !x2
/// let f = Sop::from_cubes(3, vec![Cube::new(0b011, 0), Cube::new(0, 0b100)]);
/// assert!(f.eval(0b011));
/// assert!(f.eval(0b000));
/// assert!(!f.eval(0b100));
/// assert_eq!(f.literal_count(), 3);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Sop {
    vars: usize,
    cubes: Vec<Cube>,
}

impl Sop {
    /// Creates an SOP from cubes.
    ///
    /// # Panics
    ///
    /// Panics if `vars > 64` or any cube mentions a variable `>= vars`.
    #[must_use]
    pub fn from_cubes(vars: usize, cubes: Vec<Cube>) -> Self {
        assert!(vars <= 64, "SOP limited to 64 variables");
        for c in &cubes {
            assert!(
                vars == 64 || c.support_mask() < (1u64 << vars),
                "cube mentions variable outside range"
            );
        }
        Sop { vars, cubes }
    }

    /// The constant-0 SOP (no cubes).
    #[must_use]
    pub fn zero(vars: usize) -> Self {
        Self::from_cubes(vars, Vec::new())
    }

    /// The constant-1 SOP (single universal cube).
    #[must_use]
    pub fn one(vars: usize) -> Self {
        Self::from_cubes(vars, vec![Cube::universe()])
    }

    /// Builds the canonical minterm SOP of a truth table.
    ///
    /// # Panics
    ///
    /// Panics if the table has more than 64 variables (it cannot, given
    /// [`crate::MAX_TT_VARS`]).
    #[must_use]
    pub fn from_tt_minterms(tt: &TruthTable) -> Self {
        let cubes = tt.minterms().map(|m| Cube::minterm(m, tt.vars())).collect();
        Sop {
            vars: tt.vars(),
            cubes,
        }
    }

    /// Number of variables.
    #[must_use]
    pub fn vars(&self) -> usize {
        self.vars
    }

    /// The cubes of this SOP.
    #[must_use]
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes.
    #[must_use]
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    /// Total number of literals — the classic two-level cost measure.
    #[must_use]
    pub fn literal_count(&self) -> u32 {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// True if the SOP has no cubes (constant 0 syntactically).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Adds a cube.
    pub fn push(&mut self, cube: Cube) {
        assert!(
            self.vars == 64 || cube.support_mask() < (1u64 << self.vars),
            "cube mentions variable outside range"
        );
        self.cubes.push(cube);
    }

    /// Evaluates the SOP on assignment `m`.
    #[must_use]
    pub fn eval(&self, m: u64) -> bool {
        self.cubes.iter().any(|c| c.eval(m))
    }

    /// Converts to a truth table.
    ///
    /// # Panics
    ///
    /// Panics if `vars > MAX_TT_VARS`.
    #[must_use]
    pub fn to_tt(&self) -> TruthTable {
        let mut tt = TruthTable::zero(self.vars);
        for c in &self.cubes {
            tt = tt | c.to_tt(self.vars);
        }
        tt
    }

    /// Removes cubes covered by another single cube (single-cube
    /// containment), in place.
    pub fn remove_contained(&mut self) {
        let cubes = std::mem::take(&mut self.cubes);
        let mut kept: Vec<Cube> = Vec::with_capacity(cubes.len());
        'outer: for (i, c) in cubes.iter().enumerate() {
            for (j, d) in cubes.iter().enumerate() {
                if i != j && d.covers(c) && (!c.covers(d) || j < i) {
                    continue 'outer;
                }
            }
            kept.push(*c);
        }
        self.cubes = kept;
    }

    /// Mask of variables appearing in any cube.
    #[must_use]
    pub fn support_mask(&self) -> u64 {
        self.cubes.iter().fold(0, |m, c| m | c.support_mask())
    }

    /// Algebraic division of this SOP by a divisor SOP: returns
    /// `(quotient, remainder)` with `self = divisor·quotient + remainder`
    /// as algebraic expressions.
    ///
    /// This is the weak (algebraic) division used by kernel-based factoring;
    /// the quotient is empty if the divisor does not algebraically divide
    /// this expression.
    #[must_use]
    pub fn algebraic_divide(&self, divisor: &Sop) -> (Sop, Sop) {
        if divisor.is_empty() {
            return (Sop::zero(self.vars), self.clone());
        }
        // For each divisor cube, the candidate quotient cubes.
        let mut candidates: Vec<Vec<Cube>> = Vec::with_capacity(divisor.cubes.len());
        for d in &divisor.cubes {
            let quots: Vec<Cube> = self.cubes.iter().filter_map(|c| c.divide(d)).collect();
            if quots.is_empty() {
                return (Sop::zero(self.vars), self.clone());
            }
            candidates.push(quots);
        }
        // Quotient = intersection of all candidate sets.
        let mut quotient: Vec<Cube> = candidates[0].clone();
        for set in &candidates[1..] {
            quotient.retain(|q| set.contains(q));
        }
        if quotient.is_empty() {
            return (Sop::zero(self.vars), self.clone());
        }
        // Remainder = self minus divisor×quotient cubes.
        let mut product: Vec<Cube> = Vec::new();
        for d in &divisor.cubes {
            for q in &quotient {
                if let Some(p) = d.intersect(q) {
                    product.push(p);
                }
            }
        }
        let remainder: Vec<Cube> = self
            .cubes
            .iter()
            .copied()
            .filter(|c| !product.contains(c))
            .collect();
        (
            Sop::from_cubes(self.vars, quotient),
            Sop::from_cubes(self.vars, remainder),
        )
    }
}

impl fmt::Debug for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c:?}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<Cube> for Sop {
    /// Collects cubes into an SOP over 64 variables (the most permissive
    /// arity); use [`Sop::from_cubes`] when the arity matters.
    fn from_iter<T: IntoIterator<Item = Cube>>(iter: T) -> Self {
        Sop {
            vars: 64,
            cubes: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_tt_agree() {
        let f = Sop::from_cubes(4, vec![Cube::new(0b0011, 0), Cube::new(0b1000, 0b0100)]);
        let tt = f.to_tt();
        for m in 0..16u64 {
            assert_eq!(f.eval(m), tt.eval(m), "m={m}");
        }
    }

    #[test]
    fn from_tt_minterms_roundtrip() {
        let tt = TruthTable::from_fn(5, |m| (m * 7) % 5 == 1);
        let sop = Sop::from_tt_minterms(&tt);
        assert_eq!(sop.to_tt(), tt);
        assert_eq!(sop.cube_count() as u64, tt.count_ones());
    }

    #[test]
    fn containment_removal() {
        let mut f = Sop::from_cubes(
            3,
            vec![
                Cube::new(0b001, 0),     // x0
                Cube::new(0b011, 0),     // x0·x1  (contained)
                Cube::new(0b011, 0),     // duplicate (contained)
                Cube::new(0b100, 0b010), // x2·!x1
            ],
        );
        let tt = f.to_tt();
        f.remove_contained();
        assert_eq!(f.cube_count(), 2);
        assert_eq!(f.to_tt(), tt);
    }

    #[test]
    fn algebraic_division_basic() {
        // f = a·c + a·d + b·c + b·d + e  (vars a=0,b=1,c=2,d=3,e=4)
        let f = Sop::from_cubes(
            5,
            vec![
                Cube::new(0b00101, 0),
                Cube::new(0b01001, 0),
                Cube::new(0b00110, 0),
                Cube::new(0b01010, 0),
                Cube::new(0b10000, 0),
            ],
        );
        // divisor = a + b
        let d = Sop::from_cubes(5, vec![Cube::new(0b1, 0), Cube::new(0b10, 0)]);
        let (q, r) = f.algebraic_divide(&d);
        // quotient = c + d
        let mut qc: Vec<Cube> = q.cubes().to_vec();
        qc.sort();
        assert_eq!(qc, vec![Cube::new(0b00100, 0), Cube::new(0b01000, 0)]);
        assert_eq!(r.cubes(), &[Cube::new(0b10000, 0)]);
    }

    #[test]
    fn division_failure_gives_self_as_remainder() {
        let f = Sop::from_cubes(3, vec![Cube::new(0b001, 0)]);
        let d = Sop::from_cubes(3, vec![Cube::new(0b010, 0)]);
        let (q, r) = f.algebraic_divide(&d);
        assert!(q.is_empty());
        assert_eq!(r, f);
    }

    #[test]
    fn constants() {
        assert!(Sop::zero(4).to_tt().is_zero());
        assert!(Sop::one(4).to_tt().is_one());
    }
}
