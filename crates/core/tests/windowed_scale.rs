//! Release-mode scaling smoke for the windowed optimizer: a generated
//! 10k-gate circuit must complete a windowed POWDER pass under a
//! 300-second deadline, and the result must be audited for function
//! preservation — whole-netlist random simulation over every primary
//! output, plus an exact equivalence proof on the primary-output cones
//! of one sampled window.
//!
//! The heavyweight test is `#[ignore]`d so `cargo test` stays fast in
//! debug builds; CI runs it explicitly with
//! `cargo test --release -p powder --test windowed_scale -- --ignored`.

use powder::{check_equivalence, optimize, EquivOutcome, OptimizeConfig};
use powder_netlist::{partition_windows, WindowConfig};
use powder_netlist::{GateId, GateKind, Netlist};
use powder_sim::{simulate, CellCovers, Patterns};
use std::time::{Duration, Instant};

/// Extracts the fanin cones of `pos` (primary-output gates of `nl`) as
/// a standalone netlist. Every primary input of `nl` is reproduced (in
/// order, by name) so two extractions from function-equivalent parents
/// present identical interfaces to `check_equivalence`.
fn extract_cones(nl: &Netlist, pos: &[GateId]) -> Netlist {
    let mut keep = vec![false; nl.id_bound()];
    for &po in pos {
        keep[po.0 as usize] = true;
        for g in nl.tfi(po) {
            keep[g.0 as usize] = true;
        }
    }
    let mut sub = Netlist::new(format!("{}_cone", nl.name()), nl.library().clone());
    let mut map = vec![GateId(u32::MAX); nl.id_bound()];
    for &pi in nl.inputs() {
        map[pi.0 as usize] = sub.add_input(nl.gate_name(pi));
    }
    for g in nl.topo_order() {
        if !keep[g.0 as usize] {
            continue;
        }
        match nl.kind(g) {
            GateKind::Input => {}
            GateKind::Const(v) => {
                map[g.0 as usize] = sub.add_const(nl.gate_name(g), v);
            }
            GateKind::Cell(c) => {
                let fanins: Vec<GateId> = nl.fanins(g).iter().map(|&f| map[f.0 as usize]).collect();
                map[g.0 as usize] = sub.add_cell(nl.gate_name(g), c, &fanins);
            }
            GateKind::Output => {
                let src = map[nl.fanins(g)[0].0 as usize];
                sub.add_output(nl.gate_name(g), src);
            }
        }
    }
    let _ = sub.drain_dirty();
    sub.validate().expect("extracted cone is a valid netlist");
    sub
}

/// Primary-output gates reachable from a window's boundary, smallest
/// fanin cone first, capped at `max`.
fn sampled_window_pos(nl: &Netlist, boundary: &[GateId], max: usize) -> Vec<GateId> {
    let mut pos: Vec<(usize, GateId)> = boundary
        .iter()
        .copied()
        .filter(|&g| matches!(nl.kind(g), GateKind::Output))
        .map(|g| (nl.tfi(g).len(), g))
        .collect();
    pos.sort_unstable();
    pos.into_iter().map(|(_, g)| g).take(max).collect()
}

#[test]
#[ignore = "release-mode scaling smoke; run explicitly (CI does)"]
fn gen10k_windowed_pass_completes_under_deadline_and_preserves_function() {
    let lib = powder_library::lib2();
    let nl = powder_benchmarks::build_scale("gen10k", std::sync::Arc::new(lib))
        .expect("gen10k is a scale-suite name");
    assert!(nl.cell_count() >= 10_000, "{} cells", nl.cell_count());

    let budget = Duration::from_secs(300);
    let start = Instant::now();
    let config = OptimizeConfig {
        window_size: Some(1024),
        window_overlap: Some(128),
        deadline: Some(start + budget),
        ..OptimizeConfig::default()
    };
    let mut opt = nl.clone();
    let report = optimize(&mut opt, &config);
    let elapsed = start.elapsed();
    opt.validate().expect("optimized netlist is valid");
    assert!(
        elapsed < budget,
        "windowed pass took {elapsed:?}, over the {budget:?} deadline"
    );
    assert!(
        !report.windows.is_empty(),
        "a 10k-gate run must take the windowed path"
    );
    assert!(
        report.final_power <= report.initial_power,
        "power regressed: {} -> {}",
        report.initial_power,
        report.final_power
    );

    // Audit 1 — whole-netlist random simulation: every primary output
    // must agree with the original on 4096 random patterns.
    let covers = CellCovers::new(nl.library());
    let pats = Patterns::random(nl.inputs().len(), 64, 0xA0D17);
    let before = simulate(&nl, &covers, &pats);
    let after = simulate(&opt, &covers, &pats);
    for (&oa, &ob) in nl.outputs().iter().zip(opt.outputs()) {
        assert_eq!(nl.gate_name(oa), opt.gate_name(ob), "output order changed");
        assert_eq!(
            before.get(oa),
            after.get(ob),
            "output {} differs under simulation",
            nl.gate_name(oa)
        );
    }

    // Audit 2 — exact equivalence on one sampled window: re-partition
    // the optimized netlist the way a resumed run would, sample the
    // middle window, and prove its smallest primary-output cones.
    let plan = partition_windows(
        &opt,
        WindowConfig {
            size: 1024,
            overlap: 128,
        },
    );
    assert!(!plan.is_empty());
    let window = &plan.windows[plan.len() / 2];
    let sampled = sampled_window_pos(&opt, &window.boundary, 6);
    let sampled_names: Vec<&str> = sampled.iter().map(|&g| opt.gate_name(g)).collect();
    let originals: Vec<GateId> = nl
        .outputs()
        .iter()
        .copied()
        .filter(|&g| sampled_names.contains(&nl.gate_name(g)))
        .collect();
    if originals.is_empty() {
        // The sampled window fed no primary output directly; the
        // simulation audit above already covered it.
        return;
    }
    let cone_a = extract_cones(&nl, &originals);
    let cone_b = extract_cones(&opt, &sampled);
    match check_equivalence(&cone_a, &cone_b, 1_000_000).expect("interfaces match by name") {
        EquivOutcome::Equivalent => {}
        EquivOutcome::Unknown => {
            // Beyond the solver's budget: the simulation audit stands.
            eprintln!("sampled-window equiv hit the backtrack limit; sim audit passed");
        }
        other => panic!("sampled window not equivalent: {other:?}"),
    }
}

#[test]
fn gen_scale_circuits_resolve_to_the_windowed_path() {
    let lib = std::sync::Arc::new(powder_library::lib2());
    let nl = powder_benchmarks::build_scale("s13207c", lib).expect("scale name");
    // Above the auto threshold the default config must window the run.
    assert!(nl.live_gate_count() >= WindowConfig::AUTO_THRESHOLD);
    assert!(WindowConfig::auto(nl.live_gate_count()).is_some());
    let plan = partition_windows(&nl, WindowConfig::auto(nl.live_gate_count()).unwrap());
    assert!(plan.len() > 1, "8k gates should split into several windows");
}
