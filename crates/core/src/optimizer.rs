//! The `power_optimize` main loop of the paper's Figure 5.

use crate::gain::{analyze_fast, analyze_full_with};
use crate::guard::{adaptive_backtrack, deadline_exceeded, guarded_apply};
use crate::report::{
    AppliedSubstitution, GuardStats, IncrementalStats, OptimizeReport, PhaseTimes,
    QuarantinedCandidate, SubClass,
};
use powder_atpg::{
    generate_candidates_scoped, CandidateConfig, CandidateScope, CheckArena, CheckOutcome,
    Substitution,
};
use powder_engine::EngineStats;
use powder_faults::FaultState;
use powder_netlist::{ConeScratch, GateId, Netlist};
use powder_obs as obs;
use powder_power::{PowerConfig, PowerEstimator, WhatIfScratch};
use powder_sim::{simulate, CellCovers, Patterns, SimValues};
use powder_timing::{SubstitutionTiming, TimingAnalysis, TimingConfig};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How the delay constraint of Section 3.4 is specified.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DelayLimit {
    /// An absolute required time at the primary outputs.
    Absolute(f64),
    /// A multiple of the *initial* circuit delay; `Factor(1.0)` forbids any
    /// delay increase (the paper's "0 % delay constraint"), `Factor(1.2)`
    /// allows 20 %, and so on.
    Factor(f64),
}

/// Configuration of the optimizer (the parameters of Fig. 5 plus the
/// engineering knobs of the surrounding machinery).
#[derive(Clone, Debug)]
pub struct OptimizeConfig {
    /// The paper's `repeat`: substitutions committed per candidate
    /// generation round.
    pub repeat: usize,
    /// Optional delay constraint; `None` runs the unconstrained mode.
    pub delay_limit: Option<DelayLimit>,
    /// Random simulation volume: `sim_words × 64` patterns.
    pub sim_words: usize,
    /// Seed for the random pattern generator.
    pub seed: u64,
    /// PODEM backtrack budget per permissibility check.
    pub backtrack_limit: usize,
    /// Candidates pre-selected by `PG_A + PG_B` for full `PG_C` analysis.
    pub preselect: usize,
    /// Upper bound on candidate-generation rounds.
    pub max_rounds: usize,
    /// Substitutions with total gain at or below this are not applied.
    pub min_gain: f64,
    /// Candidates rejected (by delay or ATPG) per round before the round
    /// is cut short and fresh candidates are generated.
    pub max_rejections_per_round: usize,
    /// Refresh simulation values, power totals, and timing incrementally
    /// over the dirty region of each committed substitution. `false`
    /// reproduces the full-rebuild baseline (results are identical up to
    /// floating-point accumulation order); useful for benchmarking.
    pub incremental: bool,
    /// After every committed substitution, cross-check all incremental
    /// state against a from-scratch recomputation and panic on
    /// divergence. Test/debug aid; expensive.
    pub cross_check: bool,
    /// Worker threads for the candidate-evaluation pipeline. `0` means
    /// auto: the `POWDER_JOBS` environment variable if set, else the
    /// machine's available parallelism. `1` runs the sequential path;
    /// any value yields bit-identical substitution sequences.
    pub jobs: usize,
    /// Candidate-generation knobs.
    pub candidates: CandidateConfig,
    /// Power model (output load, input probabilities).
    pub power: PowerConfig,
    /// Optional wall-clock deadline. When set, the run stops cleanly at
    /// the next check point after the deadline passes and reports the
    /// best-so-far netlist (commits are monotone power improvements, so
    /// the in-place netlist *is* the best seen). Per-proof ATPG budgets
    /// also shrink as the deadline approaches; see
    /// `guard::adaptive_backtrack`. `None` (the default) imposes no
    /// limit and leaves every decision bit-identical.
    pub deadline: Option<Instant>,
    /// Deterministic fault-injection plan (see `powder-faults`). `None`
    /// (the default) disables injection; every injection site is then a
    /// no-op.
    pub faults: Option<Arc<FaultState>>,
    /// Cooperative stop request (SIGINT, daemon drain, job cancellation).
    /// Checked at the same safe points as `deadline`: the run stops
    /// cleanly between commits and reports the best-so-far netlist with
    /// [`OptimizeReport::interrupted`] set. `None` never stops early.
    pub stop: Option<Arc<AtomicBool>>,
    /// Observer fired after every *fully completed* candidate round, at
    /// a committed boundary (journal drained, analyses consistent). This
    /// is the checkpoint hook: both the sequential and parallel paths
    /// fire it at identical boundaries, so checkpoints are bit-identical
    /// at any `jobs`. Rounds cut short by the deadline or a stop request
    /// do not fire it. `None` (the default) observes nothing.
    pub round_hook: Option<RoundHook>,
    /// Core size (gates) for the windowed large-netlist driver. `None`
    /// (the default) selects the automatic policy of
    /// `powder_netlist::WindowConfig::auto`: whole-netlist optimization
    /// below the auto threshold, windowed beyond it. `Some(n)` forces
    /// `n`-gate windows regardless of circuit size.
    pub window_size: Option<usize>,
    /// Halo budget (gates borrowed from neighbouring windows) for the
    /// windowed driver. `None` derives it from the window size
    /// (`size / 8`); must be strictly smaller than the window size.
    pub window_overlap: Option<usize>,
    /// Units of work already completed by an interrupted invocation
    /// this one resumes: candidate rounds for whole-netlist runs,
    /// completed windows for windowed runs. The run executes only the
    /// remaining units. `0` (the default) runs from the start.
    pub rounds_offset: usize,
    /// Restricts candidate generation to a window of the netlist. Set
    /// by the windowed driver for its per-window inner runs; also
    /// disables window dispatch (an inner run never re-windows).
    /// `None` (the default) considers the whole netlist.
    pub scope: Option<Arc<CandidateScope>>,
}

/// Borrowed view of optimizer state at a committed round boundary,
/// handed to [`RoundHook`] observers.
pub struct RoundSnapshot<'a> {
    /// Completed rounds so far in this `optimize` call (1-based).
    pub rounds_done: usize,
    /// The netlist after the round's commits (journal drained).
    pub nl: &'a Netlist,
    /// The simulation pattern set, including counterexamples learned up
    /// to and including this round.
    pub patterns: &'a Patterns,
    /// Total substitutions committed so far in this call.
    pub commits: usize,
    /// The absolute required time this call resolved from
    /// [`OptimizeConfig::delay_limit`] (`None` when unconstrained). A
    /// resumed run must pin [`DelayLimit::Absolute`] to this value:
    /// re-resolving a [`DelayLimit::Factor`] against the mid-run netlist
    /// would move the constraint.
    pub required_time: Option<f64>,
}

/// A shareable end-of-round observer (see
/// [`OptimizeConfig::round_hook`]). Wraps the closure in an `Arc` so the
/// config stays `Clone`.
#[derive(Clone)]
pub struct RoundHook(Arc<dyn Fn(RoundSnapshot<'_>) + Send + Sync>);

impl RoundHook {
    /// Wraps `f` as a round observer.
    pub fn new(f: impl Fn(RoundSnapshot<'_>) + Send + Sync + 'static) -> Self {
        RoundHook(Arc::new(f))
    }

    /// Invokes the observer.
    pub fn call(&self, snapshot: RoundSnapshot<'_>) {
        (self.0)(snapshot);
    }
}

impl std::fmt::Debug for RoundHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RoundHook(..)")
    }
}

/// Whether a cooperative stop has been requested.
pub(crate) fn stop_requested(stop: Option<&Arc<AtomicBool>>) -> bool {
    stop.is_some_and(|s| s.load(Ordering::Relaxed))
}

impl Default for OptimizeConfig {
    fn default() -> Self {
        OptimizeConfig {
            repeat: 10,
            delay_limit: None,
            sim_words: 8,
            seed: 0xB0D1E5,
            backtrack_limit: 3_000,
            preselect: 8,
            max_rounds: 60,
            min_gain: 1e-9,
            max_rejections_per_round: 250,
            incremental: true,
            cross_check: false,
            jobs: 0,
            candidates: CandidateConfig::default(),
            power: PowerConfig::default(),
            deadline: None,
            faults: None,
            stop: None,
            round_hook: None,
            window_size: None,
            window_overlap: None,
            rounds_offset: 0,
            scope: None,
        }
    }
}

/// The analyses POWDER shares with the other passes of a pipeline: the
/// per-cell cube covers, the power estimator, the simulation pattern
/// set, and (optionally) retained simulation values under those
/// patterns.
///
/// A fresh bundle from [`SharedAnalyses::new`] reproduces the
/// standalone [`optimize`] entry point bit for bit. A bundle carried
/// across passes (by `powder_passes::AnalysisSession`) lets the
/// optimizer skip its initial full simulation when the owner kept
/// `values` refreshed over every intervening edit — the contract is
/// that `est` always matches the netlist and `values`, when `Some`,
/// matches `patterns` exactly; [`optimize_with`] upholds the same
/// contract on return (it sets `values` to `None` when the retained
/// buffer went stale, e.g. after a learned ATPG counterexample grew the
/// pattern set).
pub struct SharedAnalyses {
    /// Per-cell cube covers for word-parallel simulation.
    pub covers: CellCovers,
    /// Power estimator, kept consistent with the netlist by the owner.
    pub est: PowerEstimator,
    /// Simulation pattern set; grows by learned ATPG counterexamples.
    pub patterns: Patterns,
    /// Retained simulation values under `patterns`; `None` when stale.
    pub values: Option<SimValues>,
}

impl SharedAnalyses {
    /// Builds the bundle [`optimize`] would construct internally:
    /// estimator from the current netlist, `sim_words × 64` random
    /// patterns from `seed`, and no retained values (the first round
    /// simulates from scratch).
    #[must_use]
    pub fn new(nl: &Netlist, power: &PowerConfig, sim_words: usize, seed: u64) -> Self {
        SharedAnalyses {
            covers: CellCovers::new(nl.library()),
            est: PowerEstimator::new(nl, power),
            patterns: Patterns::random(nl.inputs().len(), sim_words.max(1), seed),
            values: None,
        }
    }
}

/// Runs POWDER on `nl` in place and reports what happened.
///
/// This is the paper's `power_optimize(netlist, repeat, delay_limit)`:
/// estimate power, then repeatedly generate candidate substitutions by
/// fault simulation, select the best by `PG_A + PG_B` pre-selection and
/// full `PG_C` analysis, discard candidates violating the delay constraint,
/// prove the survivor permissible by ATPG, commit it, and incrementally
/// re-estimate — until no power-reducing substitution remains.
pub fn optimize(nl: &mut Netlist, config: &OptimizeConfig) -> OptimizeReport {
    let mut shared = SharedAnalyses::new(nl, &config.power, config.sim_words, config.seed);
    optimize_with(nl, config, &mut shared)
}

/// [`optimize`] against caller-owned [`SharedAnalyses`] — the
/// pass-pipeline entry point. The caller must hand over a bundle whose
/// estimator (and retained values, if any) reflect the current netlist;
/// on return the bundle is consistent again and reusable by the next
/// pass.
pub fn optimize_with(
    nl: &mut Netlist,
    config: &OptimizeConfig,
    shared: &mut SharedAnalyses,
) -> OptimizeReport {
    // Window dispatch happens only at the top level: the windowed
    // driver's per-window inner runs carry a scope and fall through to
    // the classic whole-netlist (within their scope) paths below.
    if config.scope.is_none() {
        if let Some(wcfg) = crate::windowed::resolve_window_config(config, nl.live_gate_count()) {
            return crate::windowed::optimize_windowed(nl, config, shared, wcfg);
        }
    }
    let jobs = powder_engine::resolve_jobs(config.jobs);
    let report = if jobs > 1 {
        crate::parallel::optimize_parallel(nl, config, jobs, shared)
    } else {
        optimize_sequential(nl, config, shared)
    };
    record_arena_gauges(nl);
    report
}

/// Publishes the `netlist.arena.*` occupancy gauges for the current
/// arena state. Len-based byte counts, so deterministic for a given
/// netlist regardless of allocation history.
pub(crate) fn record_arena_gauges(nl: &Netlist) {
    let s = nl.arena_stats();
    obs::gauge!(obs::names::ARENA_SLOTS).set(s.slots as f64);
    obs::gauge!(obs::names::ARENA_LIVE).set(s.live as f64);
    obs::gauge!(obs::names::ARENA_DEAD).set(s.dead as f64);
    obs::gauge!(obs::names::ARENA_FANIN_POOL).set(s.fanin_pool as f64);
    obs::gauge!(obs::names::ARENA_FANOUT_BRANCHES).set(s.fanout_branches as f64);
    obs::gauge!(obs::names::ARENA_COLUMN_BYTES).set(s.column_bytes as f64);
}

/// The sequential reference path (`jobs = 1`): the parallel engine's
/// commit arbiter replays exactly these decisions, so every behavioural
/// change here must be mirrored in `crate::parallel`.
pub(crate) fn optimize_sequential(
    nl: &mut Netlist,
    config: &OptimizeConfig,
    shared: &mut SharedAnalyses,
) -> OptimizeReport {
    let t0 = Instant::now();
    let SharedAnalyses {
        covers,
        est,
        patterns,
        values,
    } = shared;
    let initial_power = est.circuit_power(nl);
    let initial_area = nl.area();
    let output_load = config.power.output_load;

    let probe_cfg = TimingConfig {
        output_load,
        required_time: None,
    };
    let initial_delay = TimingAnalysis::new(nl, &probe_cfg).circuit_delay();
    let required_time = config.delay_limit.map(|dl| match dl {
        DelayLimit::Absolute(t) => t,
        DelayLimit::Factor(f) => f * initial_delay,
    });
    let sta_cfg = TimingConfig {
        output_load,
        required_time,
    };
    let mut sta = required_time.map(|_| TimingAnalysis::new(nl, &sta_cfg));

    // The journal may hold records from netlist construction or earlier
    // caller edits; the shared analyses reflect the current state (fresh
    // from `SharedAnalyses::new` or refreshed by the owning session), so
    // incremental tracking starts from a clean slate.
    nl.drain_dirty();

    let mut applied: Vec<AppliedSubstitution> = Vec::new();
    let mut rounds = 0usize;
    let mut atpg_checks = 0usize;
    let mut atpg_rejections = 0usize;
    let mut delay_rejections = 0usize;
    let mut phase = PhaseTimes::default();
    let mut inc = IncrementalStats::default();
    let mut engine = EngineStats {
        jobs: 1,
        ..EngineStats::default()
    };
    let mut whatif_scratch = WhatIfScratch::default();

    // Retained values (possibly carried in from an earlier pass) are
    // refreshed over dirty cones after commits and fully regenerated
    // only when the pattern set itself changes (a learned ATPG
    // counterexample).
    let mut patterns_stale = false;
    let mut cone_scratch = ConeScratch::new();
    // Proof arena reused across candidates and rounds: the base circuit
    // is rebuilt only when the netlist (or the window scope) changes.
    // Outcomes are bit-identical to one-shot `check_substitution` calls.
    let mut check_arena = CheckArena::new();
    let mut cone: Vec<GateId> = Vec::new();

    let mut guard_stats = GuardStats::default();
    let mut quarantined_list: Vec<QuarantinedCandidate> = Vec::new();
    let mut quarantine: BTreeSet<Substitution> = BTreeSet::new();
    let mut deadline_hit = false;
    let mut interrupted = false;

    for _round in 0..config.max_rounds.saturating_sub(config.rounds_offset) {
        if deadline_exceeded(config.deadline) {
            deadline_hit = true;
            obs::counter!(obs::names::OPTIMIZER_DEADLINE_HITS).inc();
            break;
        }
        if stop_requested(config.stop.as_ref()) {
            interrupted = true;
            break;
        }
        rounds += 1;
        let _round_span = obs::span!(obs::names::span::ROUND);
        obs::counter!(obs::names::OPTIMIZER_ROUNDS).inc();
        let t = Instant::now();
        if !config.incremental || patterns_stale || values.is_none() {
            let _span = obs::span!(obs::names::span::PHASE_SIMULATION);
            *values = Some(simulate(nl, covers, patterns));
            patterns_stale = false;
            inc.full_resims += 1;
            obs::counter!(obs::names::ANALYSIS_SIM_FULL).inc();
        }
        phase.simulation += t.elapsed().as_secs_f64();
        let t = Instant::now();
        let cands = {
            let _span = obs::span!(obs::names::span::PHASE_CANDIDATES);
            let values = values.as_ref().expect("simulated above");
            generate_candidates_scoped(
                nl,
                covers,
                values,
                &config.candidates,
                config.scope.as_deref(),
            )
        };
        phase.candidates += t.elapsed().as_secs_f64();
        if cands.is_empty() {
            break;
        }
        // Score once per round by the re-estimation-free PG_A + PG_B.
        let t = Instant::now();
        let fast_span = obs::span!(obs::names::span::PHASE_GAIN);
        let mut scored: Vec<(Substitution, f64)> = cands
            .into_iter()
            .map(|s| {
                let fast = analyze_fast(nl, est, &s).fast();
                (s, fast)
            })
            .collect();
        scored.sort_by(|x, y| y.1.total_cmp(&x.1));
        drop(fast_span);
        phase.gain += t.elapsed().as_secs_f64();
        engine.evaluated += scored.len();
        obs::counter!(obs::names::ENGINE_EVALUATED).add(scored.len() as u64);
        let mut consumed = vec![false; scored.len()];

        let mut progress = false;
        let mut learned = false;
        let mut repeat_left = config.repeat;
        let mut rejections_this_round = 0usize;
        // Scan cursor: everything before it is consumed, so each inner
        // iteration resumes where the ranking left off instead of
        // rescanning the whole candidate list.
        let mut cursor = 0usize;
        'inner: while repeat_left > 0 && rejections_this_round < config.max_rejections_per_round {
            if deadline_exceeded(config.deadline) {
                deadline_hit = true;
                obs::counter!(obs::names::OPTIMIZER_DEADLINE_HITS).inc();
                break 'inner;
            }
            if stop_requested(config.stop.as_ref()) {
                interrupted = true;
                break 'inner;
            }
            while cursor < scored.len() && consumed[cursor] {
                cursor += 1;
            }
            // Pre-select the next `preselect` live candidates.
            let mut pre: Vec<usize> = Vec::with_capacity(config.preselect);
            let mut i = cursor;
            while i < scored.len() && pre.len() < config.preselect {
                if !consumed[i] {
                    let s = &scored[i].0;
                    if quarantine.contains(s) {
                        consumed[i] = true;
                    } else if !candidate_alive(nl, s) || !s.is_structurally_valid(nl) {
                        consumed[i] = true;
                        engine.filtered += 1;
                        obs::counter!(obs::names::ENGINE_FILTERED).inc();
                    } else {
                        pre.push(i);
                    }
                }
                i += 1;
            }
            if pre.is_empty() {
                break 'inner;
            }
            // Full PG analysis on the pre-selected set.
            let t = Instant::now();
            let gain_span = obs::span!(obs::names::span::PHASE_GAIN);
            let best = pre
                .iter()
                .map(|&i| {
                    let g = analyze_full_with(nl, est, &scored[i].0, &mut whatif_scratch);
                    (i, g.total())
                })
                .max_by(|x, y| x.1.total_cmp(&y.1))
                .expect("pre-selection is non-empty");
            engine.full_gains += pre.len();
            obs::counter!(obs::names::ENGINE_FULL_GAINS).add(pre.len() as u64);
            drop(gain_span);
            phase.gain += t.elapsed().as_secs_f64();
            let (idx, gain) = best;
            if gain <= config.min_gain {
                // The most promising candidates no longer reduce power;
                // end this round (fresh candidates may still exist).
                break 'inner;
            }
            let sub = scored[idx].0;
            consumed[idx] = true;

            // check_delay (Section 3.4).
            if let Some(sta_ref) = &sta {
                let t = Instant::now();
                let ok = {
                    let _span = obs::span!(obs::names::span::PHASE_TIMING);
                    let timing = substitution_timing(nl, sta_ref, &sub, output_load);
                    sta_ref.check_substitution(&timing)
                };
                phase.timing += t.elapsed().as_secs_f64();
                if !ok {
                    delay_rejections += 1;
                    rejections_this_round += 1;
                    obs::counter!(obs::names::OPTIMIZER_DELAY_REJECTIONS).inc();
                    continue 'inner;
                }
            }

            // check_candidate (exact ATPG).
            atpg_checks += 1;
            engine.proved += 1;
            obs::counter!(obs::names::OPTIMIZER_ATPG_CHECKS).inc();
            obs::counter!(obs::names::ENGINE_PROVED).inc();
            let t = Instant::now();
            let outcome = {
                let _span = obs::span!(obs::names::span::PHASE_ATPG);
                if powder_faults::fires(config.faults.as_ref(), powder_faults::SITE_ATPG_ABORT) {
                    CheckOutcome::Aborted
                } else {
                    let budget = adaptive_backtrack(config.backtrack_limit, t0, config.deadline);
                    match config.scope.as_deref() {
                        // Windowed runs prove on window-local cones: the
                        // miter is cut at the scope boundary, so solver
                        // work is bounded by the window.
                        Some(scope) => check_arena.check_scoped(nl, &sub, budget, &scope.sources),
                        None => check_arena.check(nl, &sub, budget),
                    }
                }
            };
            phase.atpg += t.elapsed().as_secs_f64();
            match outcome {
                CheckOutcome::Permissible => {
                    let t_apply = Instant::now();
                    let apply_span = obs::span!(obs::names::span::PHASE_APPLY);
                    let power_before = if config.incremental {
                        est.total_power()
                    } else {
                        inc.full_power_rescans += 1;
                        obs::counter!(obs::names::ANALYSIS_POWER_FULL).inc();
                        est.circuit_power(nl)
                    };
                    let area_before = nl.area();
                    // Transactional apply: checkpoint, edit, verify the
                    // dirty cone's primary outputs, roll back and
                    // quarantine on mismatch. One shared dirty region
                    // drives every analysis refresh below.
                    let guard_values = if config.incremental {
                        values.as_mut()
                    } else {
                        None
                    };
                    let region = match guarded_apply(
                        nl,
                        &sub,
                        covers,
                        guard_values,
                        config.backtrack_limit,
                        config.faults.as_ref(),
                        &mut cone_scratch,
                        &mut cone,
                        &mut guard_stats,
                    ) {
                        Ok(region) => region,
                        Err(q) => {
                            drop(apply_span);
                            phase.apply += t_apply.elapsed().as_secs_f64();
                            quarantine.insert(q.substitution);
                            quarantined_list.push(q);
                            rejections_this_round += 1;
                            continue 'inner;
                        }
                    };
                    obs::counter!(obs::names::OPTIMIZER_COMMITS).inc();
                    obs::counter!(obs::names::ANALYSIS_REFRESHES).inc();
                    obs::histogram!(
                        obs::names::ANALYSIS_CONE_GATES,
                        obs::names::CONE_GATES_BOUNDS
                    )
                    .observe(cone.len() as u64);
                    est.retire_gates(region.removed());
                    est.update_cone(nl, &cone);
                    let power_after = if config.incremental {
                        inc.incremental_power_updates += 1;
                        obs::counter!(obs::names::ANALYSIS_POWER_INCREMENTAL).inc();
                        est.total_power()
                    } else {
                        inc.full_power_rescans += 1;
                        obs::counter!(obs::names::ANALYSIS_POWER_FULL).inc();
                        est.circuit_power(nl)
                    };
                    drop(apply_span);
                    phase.apply += t_apply.elapsed().as_secs_f64();
                    applied.push(AppliedSubstitution {
                        substitution: sub,
                        class: SubClass::of(&sub),
                        power_saved: power_before - power_after,
                        area_delta: nl.area() - area_before,
                    });
                    if config.incremental && values.is_some() {
                        // The guard already resimulated the cone as part
                        // of its verification.
                        inc.incremental_resims += 1;
                        obs::counter!(obs::names::ANALYSIS_SIM_INCREMENTAL).inc();
                    }
                    if let Some(sta_ref) = sta.as_mut() {
                        let t = Instant::now();
                        let _span = obs::span!(obs::names::span::PHASE_TIMING);
                        if config.incremental {
                            sta_ref.update(nl, &region);
                            inc.incremental_sta_updates += 1;
                            obs::counter!(obs::names::ANALYSIS_STA_INCREMENTAL).inc();
                        } else {
                            *sta_ref = TimingAnalysis::new(nl, &sta_cfg);
                            inc.full_sta_rebuilds += 1;
                            obs::counter!(obs::names::ANALYSIS_STA_FULL).inc();
                        }
                        phase.timing += t.elapsed().as_secs_f64();
                    }
                    if config.cross_check {
                        inc.cross_checks += 1;
                        cross_check_state(
                            nl,
                            covers,
                            patterns,
                            est,
                            config.incremental.then_some(values.as_ref()).flatten(),
                            sta.as_ref(),
                        );
                    }
                    repeat_left -= 1;
                    progress = true;
                }
                CheckOutcome::NotPermissible(witness) => {
                    atpg_rejections += 1;
                    rejections_this_round += 1;
                    obs::counter!(obs::names::OPTIMIZER_ATPG_REJECTIONS).inc();
                    // Teach the filter: the witness distinguishes circuits,
                    // so adding it to the pattern set kills this candidate
                    // class in future rounds.
                    patterns.push_pattern(&witness);
                    patterns_stale = true;
                    learned = true;
                }
                CheckOutcome::Aborted => {
                    atpg_rejections += 1;
                    rejections_this_round += 1;
                    obs::counter!(obs::names::OPTIMIZER_ATPG_REJECTIONS).inc();
                }
            }
        }
        if deadline_hit || interrupted {
            break;
        }
        // The round completed at a committed boundary: let the observer
        // (the checkpoint sink) see the state.
        if let Some(hook) = &config.round_hook {
            hook.call(RoundSnapshot {
                rounds_done: rounds,
                nl,
                patterns,
                commits: applied.len(),
                required_time,
            });
        }
        // A round that only *learned* counterexamples still sharpened the
        // filter; re-generate candidates against the enlarged pattern set
        // before giving up.
        if !progress && !learned {
            break;
        }
    }

    // Uphold the shared-analyses contract: retained values must match
    // the pattern set exactly. Learned counterexamples grew `patterns`
    // past the buffer, and the full-rebuild baseline deliberately leaves
    // the buffer stale between rounds.
    if patterns_stale || !config.incremental {
        *values = None;
    }

    let final_delay = TimingAnalysis::new(nl, &probe_cfg).circuit_delay();
    OptimizeReport {
        initial_power,
        final_power: est.circuit_power(nl),
        initial_area,
        final_area: nl.area(),
        initial_delay,
        final_delay,
        applied,
        rounds,
        atpg_checks,
        atpg_rejections,
        delay_rejections,
        cpu_seconds: t0.elapsed().as_secs_f64(),
        phase,
        incremental: inc,
        jobs: 1,
        engine,
        guard: guard_stats,
        quarantined: quarantined_list,
        windows: Vec::new(),
        deadline_hit,
        interrupted,
    }
}

/// All gates referenced by a candidate are still live.
pub(crate) fn candidate_alive(nl: &Netlist, sub: &Substitution) -> bool {
    let (b, c) = sub.sources();
    if !nl.is_live(b) || c.is_some_and(|c| !nl.is_live(c)) {
        return false;
    }
    match *sub {
        Substitution::Os2 { a, .. } | Substitution::Os3 { a, .. } => nl.is_live(a),
        Substitution::Is2 { sink, pin, .. } | Substitution::Is3 { sink, pin, .. } => {
            nl.is_live(sink) && (pin as usize) < nl.fanins(sink).len()
        }
    }
}

/// Compares every piece of incrementally maintained state against a
/// from-scratch recomputation, panicking on divergence. `values` is only
/// supplied in incremental mode — the baseline deliberately leaves the
/// retained buffer stale between rounds.
pub(crate) fn cross_check_state(
    nl: &Netlist,
    covers: &CellCovers,
    patterns: &Patterns,
    est: &PowerEstimator,
    values: Option<&SimValues>,
    sta: Option<&TimingAnalysis>,
) {
    let close = |x: f64, y: f64| (x == y) || (x - y).abs() <= 1e-9;

    let scan = est.circuit_power(nl);
    let total = est.total_power();
    let tol = 1e-6 * scan.abs().max(1.0);
    assert!(
        (total - scan).abs() <= tol,
        "running power total {total} diverged from scan {scan}"
    );
    let fresh = PowerEstimator::new(nl, est.config());
    for g in nl.iter_live() {
        assert!(
            close(est.probability(g), fresh.probability(g)),
            "probability of {} drifted: {} vs fresh {}",
            nl.gate_name(g),
            est.probability(g),
            fresh.probability(g)
        );
    }

    if let Some(values) = values {
        let full = simulate(nl, covers, patterns);
        for g in nl.iter_live() {
            assert_eq!(
                values.get(g),
                full.get(g),
                "retained simulation of {} is stale",
                nl.gate_name(g)
            );
        }
    }

    if let Some(sta) = sta {
        let fresh = TimingAnalysis::new(nl, &sta.config());
        for g in nl.iter_live() {
            assert!(
                close(sta.arrival(g), fresh.arrival(g)),
                "arrival of {} drifted: {} vs fresh {}",
                nl.gate_name(g),
                sta.arrival(g),
                fresh.arrival(g)
            );
            assert!(
                close(sta.required(g), fresh.required(g)),
                "required of {} drifted: {} vs fresh {}",
                nl.gate_name(g),
                sta.required(g),
                fresh.required(g)
            );
        }
        assert!(
            close(sta.circuit_delay(), fresh.circuit_delay()),
            "circuit delay drifted: {} vs fresh {}",
            sta.circuit_delay(),
            fresh.circuit_delay()
        );
    }
}

/// Prepares the what-if timing description of a substitution (Section 3.4).
pub(crate) fn substitution_timing(
    nl: &Netlist,
    sta: &TimingAnalysis,
    sub: &Substitution,
    output_load: f64,
) -> SubstitutionTiming {
    let lib = nl.library();
    let (b, c) = sub.sources();
    let required_at_a = match *sub {
        Substitution::Os2 { a, .. } | Substitution::Os3 { a, .. } => sta.required(a),
        Substitution::Is2 { sink, .. } | Substitution::Is3 { sink, .. } => {
            sta.branch_required(nl, sink)
        }
    };
    let moved_cap = match *sub {
        Substitution::Os2 { a, .. } | Substitution::Os3 { a, .. } => nl.load_cap(a, output_load),
        Substitution::Is2 { sink, pin, .. } | Substitution::Is3 { sink, pin, .. } => {
            nl.branch_cap(&powder_netlist::Conn { gate: sink, pin }, output_load)
        }
    };
    match *sub {
        Substitution::Os2 { invert, .. } | Substitution::Is2 { invert, .. } => {
            if invert {
                let inv = lib.cell_ref(lib.inverter());
                SubstitutionTiming {
                    required_at_a,
                    b,
                    extra_cap_on_b: inv.pin_cap(0),
                    new_gate_delay: inv.delay(moved_cap),
                    c: None,
                }
            } else {
                SubstitutionTiming {
                    required_at_a,
                    b,
                    extra_cap_on_b: moved_cap,
                    new_gate_delay: 0.0,
                    c: None,
                }
            }
        }
        Substitution::Os3 { cell, .. } | Substitution::Is3 { cell, .. } => {
            let cl = lib.cell_ref(cell);
            SubstitutionTiming {
                required_at_a,
                b,
                extra_cap_on_b: cl.pin_cap(0),
                new_gate_delay: cl.delay(moved_cap),
                c: Some((c.expect("3-sub"), cl.pin_cap(1))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powder_atpg::check_substitution;
    use powder_library::lib2;
    use powder_sim::{simulate as sim, Patterns as Pats};
    use std::sync::Arc;

    /// Output signatures under exhaustive patterns, for equivalence checks.
    fn po_sigs(nl: &Netlist) -> Vec<Vec<u64>> {
        let covers = CellCovers::new(nl.library());
        let pats = Pats::exhaustive(nl.inputs().len());
        let vals = sim(nl, &covers, &pats);
        nl.outputs().iter().map(|&o| vals.get(o).to_vec()).collect()
    }

    fn redundant_circuit() -> Netlist {
        // Two copies of (a&b) feeding an OR plus an unrelated XOR consumer:
        // plenty of substitution opportunities.
        let lib = Arc::new(lib2());
        let and2 = lib.find_by_name("and2").unwrap();
        let or2 = lib.find_by_name("or2").unwrap();
        let xor2 = lib.find_by_name("xor2").unwrap();
        let mut nl = Netlist::new("redundant", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g1 = nl.add_cell("g1", and2, &[a, b]);
        let g2 = nl.add_cell("g2", and2, &[b, a]); // duplicate of g1
        let g3 = nl.add_cell("g3", or2, &[g1, g2]); // == g1
        let g4 = nl.add_cell("g4", xor2, &[g3, c]);
        nl.add_output("f", g4);
        nl
    }

    #[test]
    fn optimizer_reduces_power_and_preserves_function() {
        let mut nl = redundant_circuit();
        let before_sigs = po_sigs(&nl);
        let report = optimize(&mut nl, &OptimizeConfig::default());
        nl.validate().unwrap();
        assert_eq!(po_sigs(&nl), before_sigs, "I/O behaviour must not change");
        assert!(
            report.final_power < report.initial_power,
            "redundancy must be exploited: {report}"
        );
        assert!(!report.applied.is_empty());
        // The duplicate AND pair must have been merged away.
        assert!(nl.cell_count() < 4);
    }

    #[test]
    fn delay_constrained_mode_never_exceeds_limit() {
        let mut nl = redundant_circuit();
        let cfg = OptimizeConfig {
            delay_limit: Some(DelayLimit::Factor(1.0)),
            ..OptimizeConfig::default()
        };
        let report = optimize(&mut nl, &cfg);
        nl.validate().unwrap();
        assert!(
            report.final_delay <= report.initial_delay + 1e-9,
            "delay grew: {} -> {}",
            report.initial_delay,
            report.final_delay
        );
    }

    #[test]
    fn absolute_delay_limit_is_respected() {
        let mut nl = redundant_circuit();
        let initial = TimingAnalysis::new(
            &nl,
            &TimingConfig {
                output_load: 1.0,
                required_time: None,
            },
        )
        .circuit_delay();
        let cfg = OptimizeConfig {
            delay_limit: Some(DelayLimit::Absolute(initial * 2.0)),
            ..OptimizeConfig::default()
        };
        let report = optimize(&mut nl, &cfg);
        assert!(report.final_delay <= initial * 2.0 + 1e-9);
    }

    #[test]
    fn report_bookkeeping_is_consistent() {
        let mut nl = redundant_circuit();
        let report = optimize(&mut nl, &OptimizeConfig::default());
        let total_saved: f64 = report.applied.iter().map(|a| a.power_saved).sum();
        assert!(
            (total_saved - (report.initial_power - report.final_power)).abs() < 1e-6,
            "per-substitution savings must add up: {total_saved} vs {}",
            report.initial_power - report.final_power
        );
        let total_area: f64 = report.applied.iter().map(|a| a.area_delta).sum();
        assert!((total_area - (report.final_area - report.initial_area)).abs() < 1e-6);
    }

    /// The paper's Figure 2 rewiring end-to-end: starting from circuit A
    /// (d = a ⊕ c branches into f = d·b, plus e = a·b driving its own
    /// output), POWDER finds a power-reducing permissible rewiring of the
    /// XOR's `a` branch onto e, producing circuit B.
    #[test]
    fn paper_figure2_example() {
        let lib = Arc::new(lib2());
        let xor2 = lib.find_by_name("xor2").unwrap();
        let and2 = lib.find_by_name("and2").unwrap();
        let mut nl = Netlist::new("fig2", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let e = nl.add_cell("e", and2, &[a, b]);
        let d = nl.add_cell("d", xor2, &[a, c]);
        let f = nl.add_cell("f", and2, &[d, b]);
        nl.add_output("fe", e);
        nl.add_output("ff", f);
        let before_sigs = po_sigs(&nl);

        // The candidate the paper performs: IS2 of branch a→d by e.
        let sub = Substitution::Is2 {
            sink: d,
            pin: 0,
            b: e,
            invert: false,
        };
        let est = PowerEstimator::new(&nl, &PowerConfig::default());
        let gain = crate::gain::analyze_full(&nl, &est, &sub);
        assert!(
            gain.total() > 0.0,
            "the Figure 2 rewiring must reduce power: {gain:?}"
        );
        assert_eq!(
            check_substitution(&nl, &sub, 1000),
            CheckOutcome::Permissible
        );

        // And the optimizer, left alone, must reduce power without
        // changing the outputs.
        let report = optimize(&mut nl, &OptimizeConfig::default());
        nl.validate().unwrap();
        assert_eq!(po_sigs(&nl), before_sigs);
        assert!(report.final_power < report.initial_power, "{report}");
    }

    /// Incremental and full-rebuild modes share all decision code, so they
    /// must commit the same substitutions and land on the same power.
    #[test]
    fn incremental_mode_matches_full_rebuild_baseline() {
        let mut nl_inc = redundant_circuit();
        let mut nl_full = redundant_circuit();
        let cfg_inc = OptimizeConfig {
            delay_limit: Some(DelayLimit::Factor(1.5)),
            ..OptimizeConfig::default()
        };
        let cfg_full = OptimizeConfig {
            incremental: false,
            ..cfg_inc.clone()
        };
        let r_inc = optimize(&mut nl_inc, &cfg_inc);
        let r_full = optimize(&mut nl_full, &cfg_full);
        assert_eq!(r_inc.applied.len(), r_full.applied.len());
        assert!(
            (r_inc.final_power - r_full.final_power).abs() < 1e-9,
            "modes diverged: {} vs {}",
            r_inc.final_power,
            r_full.final_power
        );
        assert!((r_inc.final_area - r_full.final_area).abs() < 1e-9);
    }

    /// ISSUE acceptance: in steady state no full STA rebuild and no O(n)
    /// power rescan happens after a committed substitution.
    #[test]
    fn steady_state_commits_use_only_incremental_refreshes() {
        let mut nl = redundant_circuit();
        let cfg = OptimizeConfig {
            delay_limit: Some(DelayLimit::Factor(2.0)),
            ..OptimizeConfig::default()
        };
        let report = optimize(&mut nl, &cfg);
        assert!(
            !report.applied.is_empty(),
            "test needs at least one commit to be meaningful"
        );
        assert_eq!(report.incremental.full_sta_rebuilds, 0, "{report}");
        assert_eq!(report.incremental.full_power_rescans, 0, "{report}");
        assert!(report.incremental.incremental_sta_updates > 0);
        assert!(report.incremental.incremental_power_updates > 0);
        assert!(report.incremental.incremental_resims > 0);
    }

    /// With cross-checking on, every commit verifies the incremental state
    /// against from-scratch recomputation (and panics on divergence).
    #[test]
    fn cross_check_mode_passes_on_examples() {
        let mut nl = redundant_circuit();
        let cfg = OptimizeConfig {
            cross_check: true,
            delay_limit: Some(DelayLimit::Factor(1.5)),
            ..OptimizeConfig::default()
        };
        let report = optimize(&mut nl, &cfg);
        nl.validate().unwrap();
        assert_eq!(report.incremental.cross_checks, report.applied.len());
        // The Figure 2 circuit exercises the IS2 branch-rewiring path.
        let lib = Arc::new(lib2());
        let xor2 = lib.find_by_name("xor2").unwrap();
        let and2 = lib.find_by_name("and2").unwrap();
        let mut nl = Netlist::new("fig2", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let e = nl.add_cell("e", and2, &[a, b]);
        let d = nl.add_cell("d", xor2, &[a, c]);
        let f = nl.add_cell("f", and2, &[d, b]);
        nl.add_output("fe", e);
        nl.add_output("ff", f);
        let cfg = OptimizeConfig {
            cross_check: true,
            ..OptimizeConfig::default()
        };
        let report = optimize(&mut nl, &cfg);
        nl.validate().unwrap();
        assert_eq!(report.incremental.cross_checks, report.applied.len());
    }

    /// The per-phase breakdown accounts for (most of) the wall clock and
    /// every tracked phase is non-negative.
    #[test]
    fn phase_times_are_sane() {
        let mut nl = redundant_circuit();
        let report = optimize(&mut nl, &OptimizeConfig::default());
        let p = report.phase;
        for t in [
            p.simulation,
            p.candidates,
            p.gain,
            p.timing,
            p.atpg,
            p.apply,
        ] {
            assert!(t >= 0.0);
        }
        assert!(
            p.total() <= report.cpu_seconds + 1e-6,
            "phases {} exceed wall clock {}",
            p.total(),
            report.cpu_seconds
        );
    }
}
