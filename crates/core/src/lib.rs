//! **POWDER** — power reduction after technology mapping by ATPG-based
//! structural transformations.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Rohfleisch, Kölbl, Wurth, DAC 1996): a post-mapping optimizer that
//! performs a sequence of *permissible signal substitutions* — OS2, IS2,
//! OS3 and IS3, plus their inverted-signal variants — each chosen to reduce
//! the circuit's switched capacitance `Σ C(i)·E(i)`, optionally under a
//! delay constraint.
//!
//! The pieces map one-to-one onto the paper:
//!
//! | paper | here |
//! |---|---|
//! | power gain analysis, Eqs. (2)–(5) | [`gain::analyze_fast`], [`gain::analyze_full`] |
//! | `get_candidate_substitutions` | `powder_atpg::generate_candidates` |
//! | `select_power_red_subst` | the pre-selection + `PG_C` ranking in [`optimize`] |
//! | `check_delay` (§3.4) | `powder_timing::TimingAnalysis::check_substitution` |
//! | `check_candidate` (ATPG) | `powder_atpg::check_substitution` |
//! | `perform_substitution` | [`apply::apply_substitution`] |
//! | `power_estimate_update` | `powder_power::PowerEstimator::update_cone` |
//! | Fig. 5 `power_optimize` | [`optimize`] |
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use powder_library::lib2;
//! use powder_netlist::Netlist;
//! use powder::{optimize, OptimizeConfig};
//!
//! // Build a tiny mapped circuit with a redundant gate pair.
//! let lib = Arc::new(lib2());
//! let and2 = lib.find_by_name("and2").unwrap();
//! let or2 = lib.find_by_name("or2").unwrap();
//! let andn2 = lib.find_by_name("andn2").unwrap();
//! let mut nl = Netlist::new("demo", lib);
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let g1 = nl.add_cell("g1", and2, &[a, b]);
//! let g2 = nl.add_cell("g2", andn2, &[a, b]);
//! let g3 = nl.add_cell("g3", or2, &[g1, g2]); // g3 == a
//! nl.add_output("f", g3);
//!
//! let report = optimize(&mut nl, &OptimizeConfig::default());
//! assert!(report.final_power <= report.initial_power);
//! nl.validate().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apply;
pub mod gain;
mod guard;
mod optimizer;
mod parallel;
pub mod redundancy;
pub mod report;
pub mod resize;
mod windowed;

pub use optimizer::{
    optimize, optimize_with, DelayLimit, OptimizeConfig, RoundHook, RoundSnapshot, SharedAnalyses,
};
pub use powder_atpg::{
    check_equivalence, CandidateConfig, CandidateScope, EquivOutcome, Substitution,
};
pub use powder_engine::EngineStats;
pub use report::{
    AppliedSubstitution, ClassStats, GuardStats, IncrementalStats, OptimizeReport, PhaseTimes,
    QuarantineReason, QuarantinedCandidate, SubClass, WindowReport,
};
