//! The windowed driver for large netlists.
//!
//! Whole-netlist POWDER walks every stem/branch pair per round; on a
//! 100k-gate circuit that is hopeless. This module runs the same
//! optimizer window-locally instead: the netlist is carved into
//! MFFC-seeded overlapping regions (`powder_netlist::window`), and each
//! window gets its own inner [`optimize_with`] run whose candidate
//! generation is restricted by a [`CandidateScope`] — rewrite targets
//! are the window core, substitution sources its full scope (core,
//! halo, boundary). Everything downstream of candidate generation (gain
//! analysis, delay checks, the ATPG permissibility miter, the commit
//! guard) is already cone-local and needs no window awareness.
//!
//! # Repartition per step
//!
//! The plan is recomputed from the *current* netlist before every
//! window, and step `k` processes window `k` of that fresh plan.
//! Partitioning is a deterministic function of the arena state, so a
//! run resumed from the checkpoint taken after window `k-1` (restored
//! netlist + `rounds_offset = k`) recomputes exactly the plan the
//! uninterrupted run saw at step `k` — checkpoint/resume round-trips
//! bit-identically, the same property the whole-netlist rounds have.
//!
//! # Cross-window conflicts
//!
//! Windows are processed strictly in plan order against the shared
//! netlist, and cores are disjoint, so two windows never race for the
//! same rewrite target; halo gates are read-only substitution sources.
//! A commit in window `k` that sweeps logic reaching into a later
//! window's territory is simply reflected in the repartitioned plan of
//! step `k+1` — there is no stale-plan reconciliation to do.

use crate::optimizer::{
    optimize_with, stop_requested, DelayLimit, OptimizeConfig, RoundSnapshot, SharedAnalyses,
};
use crate::report::{GuardStats, IncrementalStats, OptimizeReport, PhaseTimes, WindowReport};
use powder_atpg::CandidateScope;
use powder_engine::EngineStats;
use powder_netlist::{partition_windows, Netlist, Window, WindowConfig};
use powder_obs as obs;
use powder_timing::{TimingAnalysis, TimingConfig};
use std::sync::Arc;
use std::time::Instant;

/// Resolves the window configuration a top-level run should use:
/// explicit `window_size` wins, otherwise the automatic policy of
/// [`WindowConfig::auto`] decides by live gate count. An unset overlap
/// defaults to an eighth of the window size. `None` means run the
/// classic whole-netlist paths.
pub(crate) fn resolve_window_config(
    config: &OptimizeConfig,
    live_gates: usize,
) -> Option<WindowConfig> {
    match config.window_size {
        Some(size) => Some(WindowConfig {
            size,
            overlap: config
                .window_overlap
                .unwrap_or_else(|| (size / 8).min(size.saturating_sub(1))),
        }),
        None => WindowConfig::auto(live_gates).map(|auto| WindowConfig {
            overlap: config.window_overlap.unwrap_or(auto.overlap),
            ..auto
        }),
    }
}

/// Dense scope masks for one window: targets are the core, sources the
/// full scope. Returns the scope cardinality alongside for reporting.
fn window_scope(bound: usize, w: &Window) -> (CandidateScope, usize) {
    let mut targets = vec![false; bound];
    for &g in &w.core {
        targets[g.0 as usize] = true;
    }
    let scope_ids = w.scope();
    let scope_gates = scope_ids.len();
    let mut sources = vec![false; bound];
    for &g in &scope_ids {
        sources[g.0 as usize] = true;
    }
    (CandidateScope { targets, sources }, scope_gates)
}

/// Runs POWDER window by window (see the module docs). `wcfg` comes
/// from [`resolve_window_config`]; panics if it is degenerate
/// (`size == 0` or `overlap >= size`) — the CLI validates user input
/// before it gets here.
pub(crate) fn optimize_windowed(
    nl: &mut Netlist,
    config: &OptimizeConfig,
    shared: &mut SharedAnalyses,
    wcfg: WindowConfig,
) -> OptimizeReport {
    let t0 = Instant::now();
    let jobs = powder_engine::resolve_jobs(config.jobs);
    let output_load = config.power.output_load;
    let initial_power = shared.est.circuit_power(nl);
    let initial_area = nl.area();
    let probe_cfg = TimingConfig {
        output_load,
        required_time: None,
    };
    let initial_delay = TimingAnalysis::new(nl, &probe_cfg).circuit_delay();
    // Resolve a Factor constraint once, against the initial circuit:
    // per-window inner runs get an Absolute limit, so later windows
    // never re-anchor the constraint to an already-optimized delay.
    let required_time = config.delay_limit.map(|dl| match dl {
        DelayLimit::Absolute(t) => t,
        DelayLimit::Factor(f) => f * initial_delay,
    });

    let mut report = OptimizeReport {
        initial_power,
        final_power: initial_power,
        initial_area,
        final_area: initial_area,
        initial_delay,
        final_delay: initial_delay,
        applied: Vec::new(),
        rounds: 0,
        atpg_checks: 0,
        atpg_rejections: 0,
        delay_rejections: 0,
        cpu_seconds: 0.0,
        phase: PhaseTimes::default(),
        incremental: IncrementalStats::default(),
        jobs,
        engine: EngineStats {
            jobs,
            ..EngineStats::default()
        },
        guard: GuardStats::default(),
        quarantined: Vec::new(),
        windows: Vec::new(),
        deadline_hit: false,
        interrupted: false,
    };
    let mut windows_done = 0usize;

    let mut k = config.rounds_offset;
    loop {
        if crate::guard::deadline_exceeded(config.deadline) {
            report.deadline_hit = true;
            obs::counter!(obs::names::OPTIMIZER_DEADLINE_HITS).inc();
            break;
        }
        if stop_requested(config.stop.as_ref()) {
            report.interrupted = true;
            break;
        }
        let plan = partition_windows(nl, wcfg);
        obs::gauge!(obs::names::WINDOW_PLAN_SIZE).set(plan.len() as f64);
        if k >= plan.len() {
            break;
        }
        let w = &plan.windows[k];
        let t_window = Instant::now();
        let _span = obs::span!(obs::names::span::WINDOW);
        let (scope, scope_gates) = window_scope(nl.id_bound(), w);

        let mut inner = config.clone();
        inner.scope = Some(Arc::new(scope));
        inner.window_size = None;
        inner.window_overlap = None;
        inner.rounds_offset = 0;
        inner.round_hook = None;
        inner.delay_limit = required_time.map(DelayLimit::Absolute);

        let rep = optimize_with(nl, &inner, shared);

        report.atpg_checks += rep.atpg_checks;
        report.atpg_rejections += rep.atpg_rejections;
        report.delay_rejections += rep.delay_rejections;
        report.phase.accumulate(&rep.phase);
        accumulate_incremental(&mut report.incremental, &rep.incremental);
        accumulate_engine(&mut report.engine, &rep.engine);
        accumulate_guard(&mut report.guard, &rep.guard);
        let commits = rep.applied.len();
        let power_saved: f64 = rep.applied.iter().map(|a| a.power_saved).sum();
        obs::counter!(obs::names::WINDOW_PROCESSED).inc();
        obs::counter!(obs::names::WINDOW_COMMITS).add(commits as u64);
        report.windows.push(WindowReport {
            index: k,
            core_gates: w.core.len(),
            scope_gates,
            commits,
            power_saved,
            phase: rep.phase,
            seconds: t_window.elapsed().as_secs_f64(),
        });
        report.applied.extend(rep.applied);
        report.quarantined.extend(rep.quarantined);
        report.deadline_hit |= rep.deadline_hit;
        report.interrupted |= rep.interrupted;
        if report.deadline_hit || report.interrupted {
            // The window was cut short mid-round; like a cut-short
            // whole-netlist round it fires no hook, so a resume replays
            // it from the last completed-window checkpoint.
            break;
        }
        windows_done += 1;
        if let Some(hook) = &config.round_hook {
            hook.call(RoundSnapshot {
                rounds_done: windows_done,
                nl,
                patterns: &shared.patterns,
                commits: report.applied.len(),
                required_time,
            });
        }
        k += 1;
    }

    report.rounds = report.windows.len();
    crate::optimizer::record_arena_gauges(nl);
    report.final_power = shared.est.circuit_power(nl);
    report.final_area = nl.area();
    report.final_delay = TimingAnalysis::new(nl, &probe_cfg).circuit_delay();
    report.cpu_seconds = t0.elapsed().as_secs_f64();
    report
}

fn accumulate_incremental(into: &mut IncrementalStats, from: &IncrementalStats) {
    into.full_sta_rebuilds += from.full_sta_rebuilds;
    into.incremental_sta_updates += from.incremental_sta_updates;
    into.full_resims += from.full_resims;
    into.incremental_resims += from.incremental_resims;
    into.full_power_rescans += from.full_power_rescans;
    into.incremental_power_updates += from.incremental_power_updates;
    into.cross_checks += from.cross_checks;
}

fn accumulate_engine(into: &mut EngineStats, from: &EngineStats) {
    into.evaluated += from.evaluated;
    into.filtered += from.filtered;
    into.full_gains += from.full_gains;
    into.proved += from.proved;
    into.speculative_hits += from.speculative_hits;
    into.invalidated += from.invalidated;
    into.retried += from.retried;
    into.worker_panics += from.worker_panics;
    into.quarantined_batches += from.quarantined_batches;
    into.degraded_phases += from.degraded_phases;
    into.filter_seconds += from.filter_seconds;
    into.gain_seconds += from.gain_seconds;
    into.proof_seconds += from.proof_seconds;
    into.arbiter_seconds += from.arbiter_seconds;
}

fn accumulate_guard(into: &mut GuardStats, from: &GuardStats) {
    into.verified += from.verified;
    into.skipped += from.skipped;
    into.mismatches += from.mismatches;
    into.rollbacks += from.rollbacks;
    into.escalations += from.escalations;
    into.quarantined += from.quarantined;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use powder_library::lib2;
    use powder_netlist::GateId;
    use powder_sim::{simulate, CellCovers, Patterns};
    use std::sync::Arc;

    /// Deterministic layered DAG with plenty of redundancy: each layer
    /// duplicates half its gates, so OS2 merges abound in every region.
    fn layered(layers: usize, width: usize) -> Netlist {
        let lib = Arc::new(lib2());
        let and2 = lib.find_by_name("and2").unwrap();
        let or2 = lib.find_by_name("or2").unwrap();
        let mut nl = Netlist::new("layered", lib);
        let mut prev: Vec<GateId> = (0..width).map(|i| nl.add_input(format!("i{i}"))).collect();
        for l in 0..layers {
            let mut next = Vec::with_capacity(width);
            for w in 0..width {
                // Columns pair up: each odd column duplicates the even
                // column to its left (same symmetric cell, operands
                // swapped) — a guaranteed OS2 opportunity per pair.
                let cell = if (l + w / 2) % 2 == 0 { and2 } else { or2 };
                let (a, b) = if w % 2 == 1 {
                    (prev[w], prev[w - 1])
                } else {
                    (prev[w], prev[(w + 1) % width])
                };
                next.push(nl.add_cell(format!("g{l}_{w}"), cell, &[a, b]));
            }
            prev = next;
        }
        for (w, &g) in prev.iter().enumerate() {
            nl.add_output(format!("o{w}"), g);
        }
        let _ = nl.drain_dirty();
        nl.validate().unwrap();
        nl
    }

    fn po_sigs(nl: &Netlist) -> Vec<Vec<u64>> {
        let covers = CellCovers::new(nl.library());
        let pats = Patterns::exhaustive(nl.inputs().len().min(10));
        let vals = simulate(nl, &covers, &pats);
        nl.outputs().iter().map(|&o| vals.get(o).to_vec()).collect()
    }

    #[test]
    fn windowed_run_reduces_power_and_preserves_function() {
        let mut nl = layered(6, 6);
        let before = po_sigs(&nl);
        let cfg = OptimizeConfig {
            window_size: Some(8),
            window_overlap: Some(2),
            ..OptimizeConfig::default()
        };
        let report = optimize(&mut nl, &cfg);
        nl.validate().unwrap();
        assert_eq!(po_sigs(&nl), before, "I/O behaviour must not change");
        assert!(!report.windows.is_empty(), "windowed driver must have run");
        assert!(report.final_power < report.initial_power, "{report}");
        assert_eq!(report.rounds, report.windows.len());
        let commits: usize = report.windows.iter().map(|w| w.commits).sum();
        assert_eq!(commits, report.applied.len());
    }

    #[test]
    fn window_rows_account_for_savings() {
        let mut nl = layered(5, 4);
        let cfg = OptimizeConfig {
            window_size: Some(6),
            ..OptimizeConfig::default()
        };
        let report = optimize(&mut nl, &cfg);
        let per_window: f64 = report.windows.iter().map(|w| w.power_saved).sum();
        let total = report.initial_power - report.final_power;
        assert!(
            (per_window - total).abs() < 1e-6,
            "window savings {per_window} must add up to {total}"
        );
    }

    #[test]
    fn small_circuits_stay_on_the_classic_path_by_default() {
        let mut nl = layered(4, 4);
        let report = optimize(&mut nl, &OptimizeConfig::default());
        assert!(
            report.windows.is_empty(),
            "auto policy must not window below the threshold"
        );
    }

    #[test]
    fn windowed_resume_is_bit_identical() {
        // Reference: run all windows in one call, recording the commit
        // sequence per completed window.
        let cfg = OptimizeConfig {
            window_size: Some(8),
            window_overlap: Some(2),
            ..OptimizeConfig::default()
        };
        let mut nl_ref = layered(6, 6);
        let ref_report = optimize(&mut nl_ref, &cfg);
        assert!(
            ref_report.windows.len() >= 2,
            "test needs at least two windows"
        );

        // Interrupted run: process exactly one window, then resume a
        // second invocation with rounds_offset = 1 against the same
        // netlist and carried analyses (the checkpoint protocol restores
        // the pattern set, which learned counterexamples may have grown).
        let mut nl = layered(6, 6);
        let mut shared = SharedAnalyses::new(&nl, &cfg.power, cfg.sim_words, cfg.seed);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_in_hook = stop.clone();
        let first = OptimizeConfig {
            stop: Some(stop.clone()),
            round_hook: Some(crate::optimizer::RoundHook::new(move |_snap| {
                stop_in_hook.store(true, std::sync::atomic::Ordering::Relaxed);
            })),
            ..cfg.clone()
        };
        let r1 = optimize_with(&mut nl, &first, &mut shared);
        assert_eq!(r1.windows.len(), 1, "stop after the first window");
        let resumed = OptimizeConfig {
            rounds_offset: 1,
            ..cfg.clone()
        };
        let r2 = optimize_with(&mut nl, &resumed, &mut shared);

        let seq_ref: Vec<_> = ref_report.applied.iter().map(|a| a.substitution).collect();
        let seq_split: Vec<_> = r1
            .applied
            .iter()
            .chain(r2.applied.iter())
            .map(|a| a.substitution)
            .collect();
        assert_eq!(seq_ref, seq_split, "resume diverged from one-shot run");
        assert!((nl_ref.area() - nl.area()).abs() < 1e-9);
    }
}
