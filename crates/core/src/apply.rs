//! Committing a substitution to the netlist (the paper's
//! `perform_substitution`).

use powder_atpg::Substitution;
use powder_netlist::{GateId, Netlist};

/// What a committed substitution changed.
#[derive(Clone, Debug)]
pub struct ApplyResult {
    /// The signal now feeding the rewired branches (an existing stem, a new
    /// inverter, or a new two-input gate).
    pub new_source: GateId,
    /// Newly created gates (inverter or the OS3/IS3 gate), if any.
    pub added: Vec<GateId>,
    /// Gates removed by the dangling sweep.
    pub removed: Vec<GateId>,
    /// The sinks whose pins were rewired.
    pub sinks: Vec<GateId>,
}

/// Applies `sub` to `nl`: creates any new inverter/gate, rewires the
/// branches, and sweeps the logic that dangles as a result.
///
/// The caller is responsible for having established permissibility (via
/// `powder_atpg::check_substitution`) and structural validity.
///
/// # Panics
///
/// Panics if the substitution references dead gates or mismatched pins.
pub fn apply_substitution(nl: &mut Netlist, sub: &Substitution) -> ApplyResult {
    let mut added = Vec::new();
    let lib = nl.library().clone();

    let new_source = match *sub {
        Substitution::Os2 { b, invert, .. } | Substitution::Is2 { b, invert, .. } => {
            if invert {
                let inv = lib.inverter();
                let g = nl.add_cell(format!("powder_inv_{}", nl.id_bound()), inv, &[b]);
                added.push(g);
                g
            } else {
                b
            }
        }
        Substitution::Os3 { cell, b, c, .. } | Substitution::Is3 { cell, b, c, .. } => {
            let g = nl.add_cell(format!("powder_new_{}", nl.id_bound()), cell, &[b, c]);
            added.push(g);
            g
        }
    };

    let (stem, sinks) = match *sub {
        Substitution::Os2 { a, .. } | Substitution::Os3 { a, .. } => {
            let sinks: Vec<GateId> = nl.fanouts(a).iter().map(|c| c.gate).collect();
            nl.replace_all_fanouts(a, new_source);
            (a, sinks)
        }
        Substitution::Is2 { sink, pin, .. } | Substitution::Is3 { sink, pin, .. } => {
            let old = nl.replace_fanin(sink, pin, new_source);
            (old, vec![sink])
        }
    };

    let removed = nl.sweep_from(stem);
    debug_assert!(nl.validate().is_ok(), "apply left an inconsistent netlist");
    ApplyResult {
        new_source,
        added,
        removed,
        sinks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powder_library::lib2;
    use powder_netlist::GateKind;
    use powder_sim::{simulate, CellCovers, Patterns};
    use std::sync::Arc;

    fn po_signatures(nl: &Netlist, inputs: usize) -> Vec<Vec<u64>> {
        let covers = CellCovers::new(nl.library());
        let pats = Patterns::exhaustive(inputs);
        let vals = simulate(nl, &covers, &pats);
        nl.outputs().iter().map(|&o| vals.get(o).to_vec()).collect()
    }

    #[test]
    fn os2_apply_preserves_io_behavior_and_sweeps() {
        let lib = Arc::new(lib2());
        let and2 = lib.find_by_name("and2").unwrap();
        let andn2 = lib.find_by_name("andn2").unwrap();
        let or2 = lib.find_by_name("or2").unwrap();
        let mut nl = Netlist::new("t", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_cell("g1", and2, &[a, b]);
        let g2 = nl.add_cell("g2", andn2, &[a, b]);
        let g3 = nl.add_cell("g3", or2, &[g1, g2]);
        nl.add_output("f", g3);
        let before = po_signatures(&nl, 2);

        let res = apply_substitution(
            &mut nl,
            &Substitution::Os2 {
                a: g3,
                b: a,
                invert: false,
            },
        );
        assert_eq!(res.removed.len(), 3);
        assert_eq!(nl.cell_count(), 0);
        assert_eq!(po_signatures(&nl, 2), before);
    }

    #[test]
    fn inverted_is2_inserts_inverter() {
        let lib = Arc::new(lib2());
        let nand2 = lib.find_by_name("nand2").unwrap();
        let and2 = lib.find_by_name("and2").unwrap();
        let or2 = lib.find_by_name("or2").unwrap();
        let mut nl = Netlist::new("t", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_input("x");
        let g1 = nl.add_cell("g1", nand2, &[a, b]);
        let g2 = nl.add_cell("g2", and2, &[a, b]);
        let g3 = nl.add_cell("g3", or2, &[g2, x]);
        nl.add_output("f1", g1);
        nl.add_output("f2", g3);
        let before = po_signatures(&nl, 3);

        let res = apply_substitution(
            &mut nl,
            &Substitution::Is2 {
                sink: g3,
                pin: 0,
                b: g1,
                invert: true,
            },
        );
        assert_eq!(res.added.len(), 1);
        let inv = res.added[0];
        assert!(
            matches!(nl.kind(inv), GateKind::Cell(c) if nl.library().cell_ref(c).is_inverter())
        );
        assert_eq!(nl.fanins(g3)[0], inv);
        assert_eq!(res.removed, vec![g2], "the old AND dangles");
        assert_eq!(po_signatures(&nl, 3), before);
    }

    #[test]
    fn is3_apply_builds_new_gate() {
        let lib = Arc::new(lib2());
        let xor2 = lib.find_by_name("xor2").unwrap();
        let and2 = lib.find_by_name("and2").unwrap();
        let mut nl = Netlist::new("fig2", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_cell("d", xor2, &[a, c]);
        let f = nl.add_cell("f", and2, &[d, b]);
        nl.add_output("fo", f);
        let before = po_signatures(&nl, 3);

        let res = apply_substitution(
            &mut nl,
            &Substitution::Is3 {
                sink: d,
                pin: 0,
                cell: and2,
                b: a,
                c: b,
            },
        );
        assert_eq!(res.added.len(), 1);
        assert_eq!(nl.fanins(d)[0], res.added[0]);
        assert!(res.removed.is_empty(), "a is a PI, nothing dangles");
        assert_eq!(po_signatures(&nl, 3), before);
    }
}
