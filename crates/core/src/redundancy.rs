//! ATPG-based redundancy removal — the classic companion transformation
//! (paper ref \[1\], Cheng & Entrena) provided as an extension pass.
//!
//! A gate input pin is *redundant* if the corresponding stuck-at fault is
//! untestable; the pin can then be tied to the constant and the gate
//! simplified. This pass reuses POWDER's permissibility machinery: tying a
//! pin to a constant is just an input substitution whose source is a
//! constant driver, checked by the same cone-local miter.

use crate::apply::apply_substitution;
use powder_atpg::{check_substitution, CheckOutcome, Substitution};
use powder_netlist::{GateId, GateKind, Netlist};

/// Result of a redundancy-removal pass.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RedundancyReport {
    /// Pins proven redundant and tied to constants.
    pub pins_tied: usize,
    /// Gates removed by the subsequent sweeps.
    pub gates_removed: usize,
    /// Area removed.
    pub area_removed: f64,
}

/// Removes redundant gate inputs by proving stuck-at faults untestable.
///
/// Iterates to a fixpoint (each removal can expose more redundancy), with
/// the given ATPG backtrack budget per proof. The netlist's function is
/// preserved; dangling logic is swept.
///
/// Note that constants introduced here are netlist-level drivers; a
/// follow-up mapping pass (`powder_synth::map_netlist`) will fold them
/// into the downstream cells.
pub fn remove_redundancies(nl: &mut Netlist, backtrack_limit: usize) -> RedundancyReport {
    let mut report = RedundancyReport::default();
    let area_before = nl.area();
    // Lazily-created constant drivers.
    let mut consts: [Option<GateId>; 2] = [None, None];

    loop {
        let mut changed = false;
        let gates: Vec<GateId> = nl
            .iter_live()
            .filter(|&g| matches!(nl.kind(g), GateKind::Cell(_)))
            .collect();
        'gates: for g in gates {
            if !nl.is_live(g) {
                continue;
            }
            for pin in 0..nl.fanins(g).len() as u32 {
                let driver = nl.fanins(g)[pin as usize];
                if matches!(nl.kind(driver), GateKind::Const(_)) {
                    continue;
                }
                for value in [false, true] {
                    let const_gate = match consts[usize::from(value)] {
                        Some(k) if nl.is_live(k) => k,
                        _ => {
                            let k = nl.add_const(format!("tie{}", u8::from(value)), value);
                            consts[usize::from(value)] = Some(k);
                            k
                        }
                    };
                    let sub = Substitution::Is2 {
                        sink: g,
                        pin,
                        b: const_gate,
                        invert: false,
                    };
                    if !sub.is_structurally_valid(nl) {
                        continue;
                    }
                    if check_substitution(nl, &sub, backtrack_limit) == CheckOutcome::Permissible {
                        let result = apply_substitution(nl, &sub);
                        report.pins_tied += 1;
                        report.gates_removed += result.removed.len();
                        changed = true;
                        continue 'gates;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Constants that ended up unused are dead weight.
    for k in consts.into_iter().flatten() {
        if nl.is_live(k) {
            nl.sweep_from(k);
        }
    }
    report.area_removed = area_before - nl.area();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use powder_library::lib2;
    use powder_sim::{simulate, CellCovers, Patterns};
    use std::sync::Arc;

    fn po_sigs(nl: &Netlist) -> Vec<Vec<u64>> {
        let covers = CellCovers::new(nl.library());
        let pats = Patterns::exhaustive(nl.inputs().len());
        let vals = simulate(nl, &covers, &pats);
        nl.outputs().iter().map(|&o| vals.get(o).to_vec()).collect()
    }

    /// f = (a | b) & (a | !b) & c contains the redundant consensus term:
    /// it equals a & c, and the OR gates' b-inputs are both redundant...
    /// actually each individually is not; use the classic: f = a·b + a·!b
    /// where g1's b-pin and g2's b-pin are *not* individually redundant,
    /// but f = (a&b) | a is: the b-pin of the first AND is redundant.
    #[test]
    fn removes_classic_redundant_pin() {
        let lib = Arc::new(lib2());
        let and2 = lib.find_by_name("and2").unwrap();
        let or2 = lib.find_by_name("or2").unwrap();
        let mut nl = Netlist::new("t", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_cell("g1", and2, &[a, b]);
        let g2 = nl.add_cell("g2", or2, &[g1, a]); // (a&b) | a == a
        nl.add_output("f", g2);
        let before = po_sigs(&nl);
        let report = remove_redundancies(&mut nl, 10_000);
        nl.validate().unwrap();
        assert_eq!(po_sigs(&nl), before, "function preserved");
        assert!(report.pins_tied >= 1, "{report:?}");
        assert!(report.area_removed > 0.0);
    }

    #[test]
    fn irredundant_circuit_untouched() {
        let lib = Arc::new(lib2());
        let xor2 = lib.find_by_name("xor2").unwrap();
        let mut nl = Netlist::new("t", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_cell("g", xor2, &[a, b]);
        nl.add_output("f", g);
        let report = remove_redundancies(&mut nl, 10_000);
        assert_eq!(report.pins_tied, 0);
        assert_eq!(nl.cell_count(), 1);
    }

    #[test]
    fn cascading_removal_reaches_fixpoint() {
        // h = (a & b) | (a & b): duplicate product; OR of equal signals.
        // After one pin ties to const, more logic dangles.
        let lib = Arc::new(lib2());
        let and2 = lib.find_by_name("and2").unwrap();
        let or2 = lib.find_by_name("or2").unwrap();
        let andn2 = lib.find_by_name("andn2").unwrap();
        let mut nl = Netlist::new("t", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_cell("g1", and2, &[a, b]);
        let g2 = nl.add_cell("g2", andn2, &[g1, b]); // (a&b)&!b == 0
        let g3 = nl.add_cell("g3", or2, &[g2, g1]); // 0 | (a&b) == a&b
        nl.add_output("f", g3);
        let before = po_sigs(&nl);
        let report = remove_redundancies(&mut nl, 10_000);
        nl.validate().unwrap();
        assert_eq!(po_sigs(&nl), before);
        assert!(report.pins_tied >= 1, "{report:?}");
    }
}
