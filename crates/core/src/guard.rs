//! The transactional commit guard (resilience pillar 1) and the
//! deadline-pressure budget policy (pillar 3).
//!
//! Every committed substitution is ATPG-proven permissible *before* it
//! is applied — but the proof, the incremental analyses, and the apply
//! machinery are all software, and on a multi-hour run a single wrong
//! answer silently corrupts the output netlist. The guard makes each
//! commit transactional: a cheap [`Netlist::checkpoint`] over the
//! edit's conservative write set, the edit itself, then an
//! *independent* post-apply verification — the dirty cone is
//! re-simulated and every primary output inside it must keep its
//! signature (a permissible substitution cannot change any PO under any
//! pattern). On mismatch the commit rolls back bit-for-bit, the
//! candidate is re-checked by ATPG at an escalated budget to classify
//! the failure, and it is quarantined for the rest of the run.
//!
//! With fault injection disabled and a healthy stack the verification
//! always passes, so guarded runs stay bit-identical to unguarded ones;
//! the cost is one cone re-simulation that the incremental path already
//! paid plus `O(write set)` gate clones per commit.

use crate::apply::apply_substitution;
use crate::report::{GuardStats, QuarantineReason, QuarantinedCandidate, SubClass};
use powder_atpg::{check_substitution, CheckOutcome, Substitution};
use powder_faults::{fires, FaultState, SITE_VERIFY_MISMATCH};
use powder_netlist::{ConeScratch, DirtyRegion, GateId, GateKind, Netlist};
use powder_obs as obs;
use powder_sim::{resimulate_cone, CellCovers, SimValues};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

/// Multiplier on the configured backtrack budget when a verification
/// mismatch sends a candidate back to ATPG for classification.
const ESCALATION_FACTOR: usize = 4;

/// Smallest backtrack budget the deadline policy will shrink to.
const MIN_BACKTRACKS: usize = 16;

/// Conservative write set of applying `sub`: every pre-existing gate
/// whose record ([`apply_substitution`]) may mutate. Gates *created* by
/// the apply are handled by the checkpoint's id bound and need not be
/// listed.
///
/// The set covers, for each primitive the apply runs:
/// - `replace_fanin` / `replace_all_fanouts`: the stem, the rewired
///   sinks, and the replacement sources `b` (and `c`), whose fanout
///   lists gain branches;
/// - `sweep_from(stem)`: every gate the cascade might remove — the
///   fixpoint closure of "all fanouts lead into the removal set" seeded
///   at the stem (a superset of the post-edit dangling set, since
///   membership is judged against the *pre-edit* fanouts minus the
///   closure itself) — plus the fanins of each closure member, whose
///   fanout lists the sweep edits.
pub(crate) fn write_set(nl: &Netlist, sub: &Substitution) -> Vec<GateId> {
    let stem = sub.substituted_stem(nl);
    let (b, c) = sub.sources();
    let mut set: Vec<GateId> = Vec::with_capacity(16);
    set.push(stem);
    set.push(b);
    set.extend(c);
    set.extend(sub.rewired_branches(nl).into_iter().map(|(sink, _)| sink));

    // Potential sweep closure, seeded at the stem.
    let mut closure: Vec<GateId> = vec![stem];
    let mut member: BTreeSet<GateId> = closure.iter().copied().collect();
    let mut changed = true;
    while changed {
        changed = false;
        for gi in 0..closure.len() {
            for &fi in nl.fanins(closure[gi]) {
                if member.contains(&fi)
                    || !matches!(nl.kind(fi), GateKind::Cell(_) | GateKind::Const(_))
                {
                    continue;
                }
                if nl
                    .fanouts(fi)
                    .iter()
                    .all(|conn| member.contains(&conn.gate))
                {
                    member.insert(fi);
                    closure.push(fi);
                    changed = true;
                }
            }
        }
    }
    for &g in &closure {
        set.extend(nl.fanins(g).iter().copied());
    }
    set.extend(closure);
    set.sort_unstable();
    set.dedup();
    set
}

/// Applies `sub` transactionally: checkpoint, apply, drain the dirty
/// region, compute its cone into `cone`, then (when retained simulation
/// values exist) re-simulate the cone and verify that no primary output
/// inside it changed its signature.
///
/// On success the caller proceeds exactly as with a bare apply — the
/// region is returned, `cone` holds the refreshed cone in topological
/// order, and `values` (if any) are already re-simulated over it. On a
/// verification mismatch the netlist and values are restored
/// bit-for-bit (the journal generation included, so epoch-keyed caches
/// stay valid), the candidate is re-proved at an escalated ATPG budget
/// to classify the failure, and the quarantine record is returned.
#[allow(clippy::too_many_arguments)]
pub(crate) fn guarded_apply(
    nl: &mut Netlist,
    sub: &Substitution,
    covers: &CellCovers,
    values: Option<&mut SimValues>,
    backtrack_limit: usize,
    faults: Option<&Arc<FaultState>>,
    cone_scratch: &mut ConeScratch,
    cone: &mut Vec<GateId>,
    stats: &mut GuardStats,
) -> Result<DirtyRegion, QuarantinedCandidate> {
    let roots = write_set(nl, sub);
    let cp = nl.checkpoint(&roots);
    apply_substitution(nl, sub);
    let region = nl.drain_dirty();
    cone.clear();
    cone_scratch.cone_topo(nl, region.touched().iter().copied(), cone);

    let Some(values) = values else {
        // No retained signatures to check against — count it so a run
        // that silently skipped every verification is visible.
        stats.skipped += 1;
        obs::counter!(obs::names::GUARD_SKIPPED).inc();
        return Ok(region);
    };

    let saved = values.save(cone);
    let po_before: Vec<(GateId, Vec<u64>)> = cone
        .iter()
        .filter(|&&g| matches!(nl.kind(g), GateKind::Output) && (g.0 as usize) < values.id_bound())
        .map(|&g| (g, values.get(g).to_vec()))
        .collect();
    resimulate_cone(nl, covers, values, cone);

    let mismatch = fires(faults, SITE_VERIFY_MISMATCH)
        || po_before
            .iter()
            .any(|(g, before)| values.get(*g) != &before[..]);
    if !mismatch {
        stats.verified += 1;
        obs::counter!(obs::names::GUARD_VERIFIED).inc();
        return Ok(region);
    }

    stats.mismatches += 1;
    obs::counter!(obs::names::GUARD_MISMATCHES).inc();
    values.restore(&saved);
    nl.rollback(cp);
    stats.rollbacks += 1;
    obs::counter!(obs::names::GUARD_ROLLBACKS).inc();

    // Independent re-proof at an escalated budget: was the original
    // Permissible verdict wrong, or did the incremental state drift?
    stats.escalations += 1;
    obs::counter!(obs::names::GUARD_ESCALATIONS).inc();
    let budget = backtrack_limit.saturating_mul(ESCALATION_FACTOR).max(1);
    let reason = match check_substitution(nl, sub, budget) {
        CheckOutcome::Permissible => QuarantineReason::Inconsistent,
        CheckOutcome::NotPermissible(_) => QuarantineReason::Refuted,
        CheckOutcome::Aborted => QuarantineReason::Unproven,
    };
    stats.quarantined += 1;
    obs::counter!(obs::names::GUARD_QUARANTINED).inc();
    Err(QuarantinedCandidate {
        substitution: *sub,
        class: SubClass::of(sub),
        reason,
    })
}

/// Per-proof ATPG budget under deadline pressure: the full `base`
/// budget while at least half of the run window remains, then a linear
/// ramp down to a floor of [`MIN_BACKTRACKS`]. Shrunk budgets make
/// proofs *abort* earlier, and aborts are always treated as rejections
/// — never as permission — so deadline pressure can only suppress
/// optimizations, not unsoundness. Without a deadline the budget is
/// exactly `base`, keeping deadline-free runs bit-identical.
pub(crate) fn adaptive_backtrack(base: usize, t0: Instant, deadline: Option<Instant>) -> usize {
    let Some(deadline) = deadline else {
        return base;
    };
    let floor = base.clamp(1, MIN_BACKTRACKS);
    let now = Instant::now();
    if now >= deadline {
        return floor;
    }
    let total = deadline.saturating_duration_since(t0).as_secs_f64();
    let left = deadline.saturating_duration_since(now).as_secs_f64();
    if total <= 0.0 {
        return base;
    }
    let frac = left / total;
    if frac >= 0.5 {
        base
    } else {
        ((base as f64 * 2.0 * frac) as usize).clamp(floor, base)
    }
}

/// Whether the run deadline has passed.
pub(crate) fn deadline_exceeded(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use powder_library::lib2;
    use std::time::Duration;

    #[test]
    fn write_set_covers_sweep_cascade() {
        // f = or(and(a,b), and(b,a)); substituting the OR's output by g1
        // sweeps g2 (and nothing else), mutating a's and b's fanouts.
        let lib = std::sync::Arc::new(lib2());
        let and2 = lib.find_by_name("and2").unwrap();
        let or2 = lib.find_by_name("or2").unwrap();
        let mut nl = Netlist::new("t", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_cell("g1", and2, &[a, b]);
        let g2 = nl.add_cell("g2", and2, &[b, a]);
        let g3 = nl.add_cell("g3", or2, &[g1, g2]);
        let o = nl.add_output("f", g3);
        let sub = Substitution::Os2 {
            a: g3,
            b: g1,
            invert: false,
        };
        let ws = write_set(&nl, &sub);
        for needed in [a, b, g1, g2, g3, o] {
            assert!(ws.contains(&needed), "write set must cover {needed}");
        }
        // Rollback through the full apply restores the exact netlist.
        let _ = nl.drain_dirty();
        let gen_before = nl.generation();
        let blif_before = powder_netlist::blif::write_blif(&nl);
        let cp = nl.checkpoint(&ws);
        apply_substitution(&mut nl, &sub);
        assert!(!nl.is_live(g2), "apply swept the duplicate AND");
        nl.rollback(cp);
        nl.validate().unwrap();
        assert_eq!(nl.generation(), gen_before);
        assert_eq!(powder_netlist::blif::write_blif(&nl), blif_before);
    }

    #[test]
    fn adaptive_backtrack_is_identity_without_deadline() {
        let t0 = Instant::now();
        assert_eq!(adaptive_backtrack(3_000, t0, None), 3_000);
    }

    #[test]
    fn adaptive_backtrack_shrinks_under_pressure() {
        let t0 = Instant::now() - Duration::from_secs(100);
        // 90% of the window elapsed: budget ramps toward the floor.
        let deadline = Some(t0 + Duration::from_secs(111));
        let b = adaptive_backtrack(3_000, t0, deadline);
        assert!(b < 3_000, "budget must shrink, got {b}");
        assert!(b >= MIN_BACKTRACKS);
        // Past the deadline: floor.
        let expired = Some(Instant::now() - Duration::from_secs(1));
        assert_eq!(adaptive_backtrack(3_000, t0, expired), MIN_BACKTRACKS);
        assert!(deadline_exceeded(expired));
        assert!(!deadline_exceeded(None));
    }
}
