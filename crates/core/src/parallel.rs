//! The parallel candidate-evaluation pipeline (`jobs > 1`).
//!
//! POWDER's inner loop spends almost all of its time on three pure
//! functions of the current netlist: fast `PG_A + PG_B` scoring, full
//! `PG_C` what-if analysis, and ATPG permissibility proofs. This module
//! runs those on a work-stealing [`WorkerPool`] against an immutable
//! netlist snapshot while a sequential *commit arbiter* replays exactly
//! the decision sequence of [`crate::optimizer::optimize_sequential`]:
//!
//! 1. **Filter** — every surviving candidate is fast-scored in
//!    parallel, sharded into per-stem batches, then stable-sorted by
//!    score (the candidate's position in this ordering is its stable
//!    id for the round).
//! 2. **Gain** — full what-if gains for the arbiter's pre-selection
//!    window plus a speculative lookahead are computed in parallel;
//!    each result is stored in a [`SpecCache`] together with the
//!    [`Footprint`] of gates the computation read.
//! 3. **Proof** — when the arbiter needs an ATPG verdict it predicts
//!    the candidates that will reach ATPG next (assuming rejections,
//!    the common case) and proves the whole batch in parallel on
//!    per-worker [`CheckArena`]s.
//! 4. **Arbitration** — the arbiter consumes cached results in the
//!    sequential decision order: same pre-selection scan, same
//!    last-max tie-break, same `min_gain` cut-off, same live delay
//!    checks. Because every cached value is a pure function of the
//!    netlist and bit-identical to what the sequential path would
//!    compute in place, any `jobs` value commits the same
//!    substitutions in the same order.
//!
//! After each commit the edit journal's dirty region is widened to
//! [`DirtyBits`] and cached entries whose footprints intersect it are
//! dropped; disjoint speculative work survives the commit and is
//! consumed later without recomputation. Gains are invalidated by the
//! full write set (touched ∪ removed ∪ refreshed cone — probabilities
//! shift all the way downstream), proofs by the structural subset
//! (touched ∪ removed) only. Results additionally persist in
//! cross-round memo tables keyed by [`Substitution`], so a candidate
//! regenerated in a later round reuses its verdict as long as its
//! footprint stayed clean. Speculation depth tracks the hardware
//! threads actually available, not the requested worker count — extra
//! in-flight proofs only pay for themselves on idle cores.

use crate::gain::{analyze_fast, analyze_full_with};
use crate::guard::{adaptive_backtrack, deadline_exceeded, guarded_apply};
use crate::optimizer::{
    candidate_alive, cross_check_state, stop_requested, substitution_timing, DelayLimit,
    OptimizeConfig, RoundSnapshot, SharedAnalyses,
};
use crate::report::{
    AppliedSubstitution, GuardStats, IncrementalStats, OptimizeReport, PhaseTimes,
    QuarantinedCandidate, SubClass,
};
use powder_atpg::{generate_candidates_scoped, CheckArena, CheckOutcome, Substitution};
use powder_engine::{
    pool::batch_by_key, DirtyBits, EngineStats, Footprint, FootprintScratch, SpecCache, WorkerPool,
};
use powder_faults::{fires, SITE_ATPG_ABORT};
use powder_netlist::{ConeScratch, GateId, Netlist};
use powder_obs as obs;
use powder_power::{PowerEstimator, WhatIfScratch};
use powder_sim::simulate;
use powder_timing::{TimingAnalysis, TimingConfig};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// Per-stem batch ceiling for the cheap fast-scoring stage.
const FAST_BATCH: usize = 64;
/// Per-stem batch ceiling for full what-if gain evaluation.
const GAIN_BATCH: usize = 4;

/// The read footprint of one candidate: inclusive TFO of the rewired
/// sinks plus the stem and replacement sources, closed under TFI. This
/// covers every gate whose state `analyze_fast`, `analyze_full_with`,
/// or `CheckArena::check` consult for the candidate.
fn footprint_of(fs: &mut FootprintScratch, nl: &Netlist, sub: &Substitution) -> Footprint {
    let sinks = sub.rewired_branches(nl).into_iter().map(|(g, _)| g);
    let (b, c) = sub.sources();
    let stem = sub.substituted_stem(nl);
    let extras = [Some(stem), Some(b), c].into_iter().flatten();
    fs.candidate_footprint(nl, sinks, extras)
}

/// Predicts the candidate ids the arbiter will send to ATPG after
/// `first`, assuming every check rejects (rejection is the common case
/// and the only assumption under which the loop state — `consumed`
/// flags and the rejection budget — evolves without a netlist edit).
/// The prediction replays the arbiter's own scan on a cloned `consumed`
/// and stops as soon as a window member's gain is not cached, the best
/// gain drops below `min_gain`, or the rejection budget runs out —
/// under-prediction only shortens the speculative batch.
#[allow(clippy::too_many_arguments)]
fn plan_proof_batch(
    nl: &Netlist,
    scored: &[(Substitution, f64)],
    gains: &SpecCache<f64>,
    consumed: &[bool],
    quarantine: &BTreeSet<Substitution>,
    cursor: usize,
    first: usize,
    rejections: usize,
    sta: Option<&TimingAnalysis>,
    output_load: f64,
    config: &OptimizeConfig,
    max_batch: usize,
) -> Vec<usize> {
    let mut plan = vec![first];
    let mut pred_consumed = consumed.to_vec();
    let mut pred_cursor = cursor;
    let mut pred_rej = rejections + 1;
    while plan.len() < max_batch && pred_rej < config.max_rejections_per_round {
        while pred_cursor < scored.len() && pred_consumed[pred_cursor] {
            pred_cursor += 1;
        }
        let mut pre: Vec<usize> = Vec::with_capacity(config.preselect);
        let mut i = pred_cursor;
        while i < scored.len() && pre.len() < config.preselect {
            if !pred_consumed[i] {
                let s = &scored[i].0;
                if quarantine.contains(s) || !candidate_alive(nl, s) || !s.is_structurally_valid(nl)
                {
                    pred_consumed[i] = true;
                } else {
                    pre.push(i);
                }
            }
            i += 1;
        }
        if pre.is_empty() {
            break;
        }
        // Same selection rule as the arbiter: maximum gain, last
        // window member wins ties.
        let mut best: Option<(usize, f64)> = None;
        let mut complete = true;
        for &i in &pre {
            match gains.get(i) {
                Some(&g) => {
                    if best.is_none_or(|(_, bg)| g.total_cmp(&bg).is_ge()) {
                        best = Some((i, g));
                    }
                }
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if !complete {
            break;
        }
        let (bi, bg) = best.expect("window is non-empty");
        if bg <= config.min_gain {
            break;
        }
        pred_consumed[bi] = true;
        if let Some(sta_ref) = sta {
            let timing = substitution_timing(nl, sta_ref, &scored[bi].0, output_load);
            if !sta_ref.check_substitution(&timing) {
                pred_rej += 1;
                continue;
            }
        }
        plan.push(bi);
        pred_rej += 1;
    }
    plan
}

/// Runs POWDER with the speculative work-stealing pipeline. Decision
/// sequence and all committed substitutions are bit-identical to
/// [`crate::optimizer::optimize_sequential`].
pub(crate) fn optimize_parallel(
    nl: &mut Netlist,
    config: &OptimizeConfig,
    jobs: usize,
    shared: &mut SharedAnalyses,
) -> OptimizeReport {
    let t0 = Instant::now();
    let SharedAnalyses {
        covers,
        est,
        patterns,
        values,
    } = shared;
    let pool = WorkerPool::new(jobs).with_faults(config.faults.clone());
    obs::gauge!(obs::names::ENGINE_JOBS).set(jobs as f64);
    // A speculative proof batch covers the next few ATPG decisions; a
    // gain lookahead keeps those predictions computable. Depth tracks
    // the hardware threads actually available (capped by `jobs`):
    // speculation is free only while it fills otherwise-idle cores, so
    // an oversubscribed pool speculates as if it had `hardware`
    // workers instead of queueing proofs a commit then invalidates.
    let spec_workers = jobs.min(powder_engine::hardware_threads());
    let proof_batch = if spec_workers > 1 {
        (2 * spec_workers).max(4)
    } else {
        1
    };
    let lookahead = config.preselect + proof_batch + jobs;

    let initial_power = est.circuit_power(nl);
    let initial_area = nl.area();
    let output_load = config.power.output_load;

    let probe_cfg = TimingConfig {
        output_load,
        required_time: None,
    };
    let initial_delay = TimingAnalysis::new(nl, &probe_cfg).circuit_delay();
    let required_time = config.delay_limit.map(|dl| match dl {
        DelayLimit::Absolute(t) => t,
        DelayLimit::Factor(f) => f * initial_delay,
    });
    let sta_cfg = TimingConfig {
        output_load,
        required_time,
    };
    let mut sta = required_time.map(|_| TimingAnalysis::new(nl, &sta_cfg));

    nl.drain_dirty();

    let mut applied: Vec<AppliedSubstitution> = Vec::new();
    let mut rounds = 0usize;
    let mut atpg_checks = 0usize;
    let mut atpg_rejections = 0usize;
    let mut delay_rejections = 0usize;
    let mut phase = PhaseTimes::default();
    let mut inc = IncrementalStats::default();
    let mut engine = EngineStats {
        jobs,
        ..EngineStats::default()
    };

    let mut patterns_stale = false;
    let mut cone_scratch = ConeScratch::new();
    let mut cone: Vec<GateId> = Vec::new();

    // Cross-round memoization. Gains and proofs are pure functions of
    // the netlist restricted to their footprint: the estimator's
    // analytic probabilities never read the pattern set, and neither
    // does the permissibility miter. Candidate generation regenerates
    // largely the same substitutions every round, so without a memo
    // each round re-proves candidates whose checks aborted earlier —
    // burning the full backtrack budget again for a verdict that
    // cannot have changed. Entries survive round boundaries and are
    // dropped by the same footprint-vs-dirty test as the per-round
    // caches, which keeps every consumed value bit-identical to an
    // in-place recomputation.
    let mut gain_memo: BTreeMap<Substitution, (Footprint, f64)> = BTreeMap::new();
    let mut proof_memo: BTreeMap<Substitution, (Footprint, CheckOutcome)> = BTreeMap::new();

    let mut guard_stats = GuardStats::default();
    let mut quarantined_list: Vec<QuarantinedCandidate> = Vec::new();
    let mut quarantine: BTreeSet<Substitution> = BTreeSet::new();
    let mut deadline_hit = false;
    let mut interrupted = false;

    for _round in 0..config.max_rounds.saturating_sub(config.rounds_offset) {
        if deadline_exceeded(config.deadline) {
            deadline_hit = true;
            obs::counter!(obs::names::OPTIMIZER_DEADLINE_HITS).inc();
            break;
        }
        if stop_requested(config.stop.as_ref()) {
            interrupted = true;
            break;
        }
        rounds += 1;
        let _round_span = obs::span!(obs::names::span::ROUND);
        obs::counter!(obs::names::OPTIMIZER_ROUNDS).inc();
        let t = Instant::now();
        if !config.incremental || patterns_stale || values.is_none() {
            let _span = obs::span!(obs::names::span::PHASE_SIMULATION);
            *values = Some(simulate(nl, covers, patterns));
            patterns_stale = false;
            inc.full_resims += 1;
            obs::counter!(obs::names::ANALYSIS_SIM_FULL).inc();
        }
        phase.simulation += t.elapsed().as_secs_f64();
        let t = Instant::now();
        let cands = {
            let _span = obs::span!(obs::names::span::PHASE_CANDIDATES);
            let values = values.as_ref().expect("simulated above");
            generate_candidates_scoped(
                nl,
                covers,
                values,
                &config.candidates,
                config.scope.as_deref(),
            )
        };
        phase.candidates += t.elapsed().as_secs_f64();
        if cands.is_empty() {
            break;
        }

        // --- Stage 1: parallel fast scoring, sharded per stem. ---
        let t = Instant::now();
        let fast: Vec<Option<f64>> = {
            let _span = obs::span!(obs::names::span::PHASE_GAIN);
            let nl_snap: &Netlist = &*nl;
            let est_ref: &PowerEstimator = est;
            let batches = batch_by_key(
                (0..cands.len() as u32).map(|i| (i, cands[i as usize].substituted_stem(nl_snap))),
                FAST_BATCH,
            );
            pool.run_batches(
                obs::names::span::STAGE_FILTER,
                &cands,
                &batches,
                || (),
                |_, _, s| analyze_fast(nl_snap, est_ref, s).fast(),
            )
        };
        // A quarantined worker batch leaves its slots `None`; those
        // candidates simply sit this round out (they reappear at the
        // next candidate generation).
        let mut scored: Vec<(Substitution, f64)> = cands
            .into_iter()
            .zip(fast)
            .filter_map(|(s, f)| f.map(|f| (s, f)))
            .collect();
        if scored.is_empty() {
            break;
        }
        scored.sort_by(|x, y| y.1.total_cmp(&x.1));
        let wall = t.elapsed().as_secs_f64();
        phase.gain += wall;
        engine.filter_seconds += wall;
        engine.evaluated += scored.len();
        obs::counter!(obs::names::ENGINE_FILTER_NS).add((wall * 1e9) as u64);
        obs::counter!(obs::names::ENGINE_EVALUATED).add(scored.len() as u64);

        let n = scored.len();
        let mut consumed = vec![false; n];
        let mut gains: SpecCache<f64> = SpecCache::new(n);
        let mut proofs: SpecCache<CheckOutcome> = SpecCache::new(n);
        // Seed this round's caches with every memoized result that is
        // still footprint-clean; re-generated candidates skip straight
        // to arbitration.
        for (id, (s, _)) in scored.iter().enumerate() {
            if let Some((fp, g)) = gain_memo.get(s) {
                gains.insert(id, fp.clone(), *g);
            }
            if let Some((fp, outcome)) = proof_memo.get(s) {
                proofs.insert(id, fp.clone(), outcome.clone());
            }
        }
        // Candidates whose cached results a commit discarded; counted
        // as retried when they are re-evaluated on demand.
        let mut dropped_mark = vec![false; n];

        let mut progress = false;
        let mut learned = false;
        let mut repeat_left = config.repeat;
        let mut rejections_this_round = 0usize;
        let mut cursor = 0usize;
        let t_inner = Instant::now();
        let mut round_parallel_wall = 0.0f64;
        'inner: while repeat_left > 0 && rejections_this_round < config.max_rejections_per_round {
            if deadline_exceeded(config.deadline) {
                deadline_hit = true;
                obs::counter!(obs::names::OPTIMIZER_DEADLINE_HITS).inc();
                break 'inner;
            }
            if stop_requested(config.stop.as_ref()) {
                interrupted = true;
                break 'inner;
            }
            while cursor < n && consumed[cursor] {
                cursor += 1;
            }
            // Pre-select the next `preselect` live candidates — the
            // same scan, in the same order, as the sequential path.
            let mut pre: Vec<usize> = Vec::with_capacity(config.preselect);
            let mut i = cursor;
            while i < n && pre.len() < config.preselect {
                if !consumed[i] {
                    let s = &scored[i].0;
                    if quarantine.contains(s) {
                        consumed[i] = true;
                    } else if !candidate_alive(nl, s) || !s.is_structurally_valid(nl) {
                        consumed[i] = true;
                        engine.filtered += 1;
                        obs::counter!(obs::names::ENGINE_FILTERED).inc();
                    } else {
                        pre.push(i);
                    }
                }
                i += 1;
            }
            if pre.is_empty() {
                break 'inner;
            }

            // --- Stage 2: ensure gains for the window, speculate on
            // the candidates behind it. ---
            let mut want: Vec<u32> = pre
                .iter()
                .filter(|&&id| gains.get(id).is_none())
                .map(|&id| id as u32)
                .collect();
            {
                let mut seen_live = 0usize;
                let mut j = i;
                while j < n && seen_live < lookahead {
                    if !consumed[j] {
                        let s = &scored[j].0;
                        if candidate_alive(nl, s) && s.is_structurally_valid(nl) {
                            seen_live += 1;
                            if gains.get(j).is_none() {
                                want.push(j as u32);
                            }
                        }
                    }
                    j += 1;
                }
            }
            if !want.is_empty() {
                let t = Instant::now();
                let _span = obs::span!(obs::names::span::PHASE_GAIN);
                let results = {
                    let nl_snap: &Netlist = &*nl;
                    let est_ref: &PowerEstimator = est;
                    let scored_ref = &scored;
                    let batches = batch_by_key(
                        want.iter()
                            .map(|&id| (id, scored_ref[id as usize].0.substituted_stem(nl_snap))),
                        GAIN_BATCH,
                    );
                    pool.run_batches(
                        obs::names::span::STAGE_GAIN,
                        scored_ref.as_slice(),
                        &batches,
                        || (WhatIfScratch::default(), FootprintScratch::default()),
                        |ctx, _, (sub, _)| {
                            let (ws, fs) = ctx;
                            let fp = footprint_of(fs, nl_snap, sub);
                            let g = analyze_full_with(nl_snap, est_ref, sub, ws).total();
                            (fp, g)
                        },
                    )
                };
                for (id, r) in results.into_iter().enumerate() {
                    if let Some((fp, g)) = r {
                        if dropped_mark[id] {
                            dropped_mark[id] = false;
                            engine.retried += 1;
                            obs::counter!(obs::names::ENGINE_RETRIED).inc();
                        }
                        gain_memo.insert(scored[id].0, (fp.clone(), g));
                        gains.insert(id, fp, g);
                    }
                }
                engine.full_gains += want.len();
                let wall = t.elapsed().as_secs_f64();
                phase.gain += wall;
                engine.gain_seconds += wall;
                round_parallel_wall += wall;
                obs::counter!(obs::names::ENGINE_FULL_GAINS).add(want.len() as u64);
                obs::counter!(obs::names::ENGINE_GAIN_NS).add((wall * 1e9) as u64);
            }

            // A quarantined gain batch can leave window members without
            // a result even after the ensure pass; skip those
            // conservatively and rebuild the window. With faults off
            // every wanted gain is present and this is dead code.
            let missing: Vec<usize> = pre
                .iter()
                .copied()
                .filter(|&id| gains.get(id).is_none())
                .collect();
            if !missing.is_empty() {
                for id in missing {
                    consumed[id] = true;
                }
                continue 'inner;
            }
            let best = pre
                .iter()
                .map(|&id| (id, *gains.get(id).expect("checked just above")))
                .max_by(|x, y| x.1.total_cmp(&y.1))
                .expect("pre-selection is non-empty");
            let (idx, gain) = best;
            if gain <= config.min_gain {
                break 'inner;
            }
            let sub = scored[idx].0;
            consumed[idx] = true;

            // check_delay (Section 3.4) — always live: timing state is
            // cheap to query and changes with every commit.
            if let Some(sta_ref) = &sta {
                let t = Instant::now();
                let ok = {
                    let _span = obs::span!(obs::names::span::PHASE_TIMING);
                    let timing = substitution_timing(nl, sta_ref, &sub, output_load);
                    sta_ref.check_substitution(&timing)
                };
                phase.timing += t.elapsed().as_secs_f64();
                if !ok {
                    delay_rejections += 1;
                    rejections_this_round += 1;
                    obs::counter!(obs::names::OPTIMIZER_DELAY_REJECTIONS).inc();
                    continue 'inner;
                }
            }

            // --- Stage 3: ATPG proofs, speculatively batched. ---
            atpg_checks += 1;
            obs::counter!(obs::names::OPTIMIZER_ATPG_CHECKS).inc();
            if proofs.get(idx).is_some() {
                engine.speculative_hits += 1;
                obs::counter!(obs::names::ENGINE_SPECULATIVE_HITS).inc();
            } else {
                let t = Instant::now();
                let _span = obs::span!(obs::names::span::PHASE_ATPG);
                let plan = plan_proof_batch(
                    nl,
                    &scored,
                    &gains,
                    &consumed,
                    &quarantine,
                    cursor,
                    idx,
                    rejections_this_round,
                    sta.as_ref(),
                    output_load,
                    config,
                    proof_batch,
                );
                let todo: Vec<u32> = plan
                    .iter()
                    .filter(|&&id| proofs.get(id).is_none())
                    .map(|&id| id as u32)
                    .collect();
                let results = {
                    let nl_snap: &Netlist = &*nl;
                    let scored_ref = &scored;
                    let bl = adaptive_backtrack(config.backtrack_limit, t0, config.deadline);
                    let faults = config.faults.clone();
                    let scope = config.scope.clone();
                    // One proof per batch: proofs dominate the
                    // pipeline, so maximal stealing wins.
                    let batches: Vec<Vec<u32>> = todo.iter().map(|&id| vec![id]).collect();
                    pool.run_batches(
                        obs::names::span::STAGE_PROOF,
                        scored_ref.as_slice(),
                        &batches,
                        CheckArena::new,
                        |arena, _, (s, _)| {
                            if fires(faults.as_ref(), SITE_ATPG_ABORT) {
                                CheckOutcome::Aborted
                            } else {
                                match scope.as_deref() {
                                    // Windowed runs prove on window-local
                                    // cones, as in the sequential path.
                                    Some(sc) => arena.check_scoped(nl_snap, s, bl, &sc.sources),
                                    None => arena.check(nl_snap, s, bl),
                                }
                            }
                        },
                    )
                };
                engine.proved += todo.len();
                for (id, r) in results.into_iter().enumerate() {
                    if let Some(outcome) = r {
                        if dropped_mark[id] {
                            dropped_mark[id] = false;
                            engine.retried += 1;
                            obs::counter!(obs::names::ENGINE_RETRIED).inc();
                        }
                        // Planned proofs have cached gains, so the
                        // footprint is normally present; a quarantined
                        // gain batch is the exception, and such proofs
                        // are simply not cached.
                        if let Some(fp) = gains.footprint(id).cloned() {
                            proof_memo.insert(scored[id].0, (fp.clone(), outcome.clone()));
                            proofs.insert(id, fp, outcome);
                        }
                    }
                }
                let wall = t.elapsed().as_secs_f64();
                phase.atpg += wall;
                engine.proof_seconds += wall;
                round_parallel_wall += wall;
                obs::counter!(obs::names::ENGINE_PROVED).add(todo.len() as u64);
                obs::counter!(obs::names::ENGINE_PROOF_NS).add((wall * 1e9) as u64);
            }
            // A proof lost to a quarantined worker batch counts as an
            // abort: conservative rejection, never permission.
            let outcome = proofs.take(idx).unwrap_or(CheckOutcome::Aborted);

            match outcome {
                CheckOutcome::Permissible => {
                    let t_apply = Instant::now();
                    let apply_span = obs::span!(obs::names::span::PHASE_APPLY);
                    let power_before = if config.incremental {
                        est.total_power()
                    } else {
                        inc.full_power_rescans += 1;
                        obs::counter!(obs::names::ANALYSIS_POWER_FULL).inc();
                        est.circuit_power(nl)
                    };
                    let area_before = nl.area();
                    // Transactional apply — same guard as the
                    // sequential path: checkpoint, edit, verify the
                    // cone's primary outputs, roll back and quarantine
                    // on mismatch. On the Err path the netlist (journal
                    // generation included) is bit-identical to before
                    // the apply, so no cached result needs
                    // invalidating.
                    let guard_values = if config.incremental {
                        values.as_mut()
                    } else {
                        None
                    };
                    let region = match guarded_apply(
                        nl,
                        &sub,
                        covers,
                        guard_values,
                        config.backtrack_limit,
                        config.faults.as_ref(),
                        &mut cone_scratch,
                        &mut cone,
                        &mut guard_stats,
                    ) {
                        Ok(region) => region,
                        Err(q) => {
                            drop(apply_span);
                            phase.apply += t_apply.elapsed().as_secs_f64();
                            quarantine.insert(q.substitution);
                            quarantined_list.push(q);
                            rejections_this_round += 1;
                            continue 'inner;
                        }
                    };
                    obs::counter!(obs::names::OPTIMIZER_COMMITS).inc();
                    obs::counter!(obs::names::ANALYSIS_REFRESHES).inc();
                    obs::histogram!(
                        obs::names::ANALYSIS_CONE_GATES,
                        obs::names::CONE_GATES_BOUNDS
                    )
                    .observe(cone.len() as u64);
                    est.retire_gates(region.removed());
                    est.update_cone(nl, &cone);
                    let power_after = if config.incremental {
                        inc.incremental_power_updates += 1;
                        obs::counter!(obs::names::ANALYSIS_POWER_INCREMENTAL).inc();
                        est.total_power()
                    } else {
                        inc.full_power_rescans += 1;
                        obs::counter!(obs::names::ANALYSIS_POWER_FULL).inc();
                        est.circuit_power(nl)
                    };
                    drop(apply_span);
                    phase.apply += t_apply.elapsed().as_secs_f64();
                    applied.push(AppliedSubstitution {
                        substitution: sub,
                        class: SubClass::of(&sub),
                        power_saved: power_before - power_after,
                        area_delta: nl.area() - area_before,
                    });
                    if config.incremental && values.is_some() {
                        // The guard already resimulated the cone as
                        // part of its verification.
                        inc.incremental_resims += 1;
                        obs::counter!(obs::names::ANALYSIS_SIM_INCREMENTAL).inc();
                    }
                    if let Some(sta_ref) = sta.as_mut() {
                        let t = Instant::now();
                        let _span = obs::span!(obs::names::span::PHASE_TIMING);
                        if config.incremental {
                            sta_ref.update(nl, &region);
                            inc.incremental_sta_updates += 1;
                            obs::counter!(obs::names::ANALYSIS_STA_INCREMENTAL).inc();
                        } else {
                            *sta_ref = TimingAnalysis::new(nl, &sta_cfg);
                            inc.full_sta_rebuilds += 1;
                            obs::counter!(obs::names::ANALYSIS_STA_FULL).inc();
                        }
                        phase.timing += t.elapsed().as_secs_f64();
                    }
                    if config.cross_check {
                        inc.cross_checks += 1;
                        cross_check_state(
                            nl,
                            covers,
                            patterns,
                            est,
                            config.incremental.then_some(values.as_ref()).flatten(),
                            sta.as_ref(),
                        );
                    }
                    // Invalidate exactly the in-flight results that
                    // read what this commit wrote. Gains read the
                    // estimator's probabilities, which shift all the
                    // way down the refreshed cone; proofs read only
                    // netlist *structure*, which changes at the
                    // touched and removed gates alone — every mutator
                    // journals each gate whose fanin or fanout list it
                    // edits, so a proof whose footprint misses that
                    // set would re-derive the identical miter and
                    // verdict, and keeps its cached outcome.
                    let dirty = DirtyBits::from_commit(
                        region.touched().iter().copied(),
                        region.removed(),
                        &cone,
                    );
                    let structural = DirtyBits::from_commit(
                        region.touched().iter().copied(),
                        region.removed(),
                        &[],
                    );
                    let mut mark = |id: usize| {
                        if !consumed[id] {
                            dropped_mark[id] = true;
                        }
                    };
                    let inv = gains.invalidate(&dirty, &mut mark)
                        + proofs.invalidate(&structural, &mut mark);
                    engine.invalidated += inv;
                    obs::counter!(obs::names::ENGINE_INVALIDATED).add(inv as u64);
                    gain_memo.retain(|_, (fp, _)| !fp.intersects(&dirty));
                    proof_memo.retain(|_, (fp, _)| !fp.intersects(&structural));
                    repeat_left -= 1;
                    progress = true;
                }
                CheckOutcome::NotPermissible(witness) => {
                    atpg_rejections += 1;
                    rejections_this_round += 1;
                    obs::counter!(obs::names::OPTIMIZER_ATPG_REJECTIONS).inc();
                    // Pattern learning only affects the next round's
                    // candidate generation; cached gains and proofs do
                    // not read the pattern set, so nothing invalidates.
                    patterns.push_pattern(&witness);
                    patterns_stale = true;
                    learned = true;
                }
                CheckOutcome::Aborted => {
                    atpg_rejections += 1;
                    rejections_this_round += 1;
                    obs::counter!(obs::names::OPTIMIZER_ATPG_REJECTIONS).inc();
                }
            }
        }
        let arbiter_wall = (t_inner.elapsed().as_secs_f64() - round_parallel_wall).max(0.0);
        engine.arbiter_seconds += arbiter_wall;
        obs::counter!(obs::names::ENGINE_ARBITER_NS).add((arbiter_wall * 1e9) as u64);
        if deadline_hit || interrupted {
            break;
        }
        // Same committed boundary as the sequential path: checkpoints
        // taken here are bit-identical at any `jobs`.
        if let Some(hook) = &config.round_hook {
            hook.call(RoundSnapshot {
                rounds_done: rounds,
                nl,
                patterns,
                commits: applied.len(),
                required_time,
            });
        }
        if !progress && !learned {
            break;
        }
    }

    // Same contract as the sequential path: retained values either
    // match the pattern set exactly or are dropped.
    if patterns_stale || !config.incremental {
        *values = None;
    }

    // Fold the pool's containment counters into the run's engine stats.
    let resilience = pool.resilience();
    engine.worker_panics += resilience.worker_panics() as usize;
    engine.quarantined_batches += resilience.quarantined_batches() as usize;
    engine.degraded_phases += resilience.degraded_phases() as usize;

    let final_delay = TimingAnalysis::new(nl, &probe_cfg).circuit_delay();
    OptimizeReport {
        initial_power,
        final_power: est.circuit_power(nl),
        initial_area,
        final_area: nl.area(),
        initial_delay,
        final_delay,
        applied,
        rounds,
        atpg_checks,
        atpg_rejections,
        delay_rejections,
        cpu_seconds: t0.elapsed().as_secs_f64(),
        phase,
        incremental: inc,
        jobs,
        engine,
        guard: guard_stats,
        quarantined: quarantined_list,
        windows: Vec::new(),
        deadline_hit,
        interrupted,
    }
}

#[cfg(test)]
mod tests {
    use crate::optimizer::{optimize, DelayLimit, OptimizeConfig};
    use powder_library::lib2;
    use powder_netlist::Netlist;
    use std::sync::Arc;

    fn redundant_circuit() -> Netlist {
        let lib = Arc::new(lib2());
        let and2 = lib.find_by_name("and2").unwrap();
        let or2 = lib.find_by_name("or2").unwrap();
        let xor2 = lib.find_by_name("xor2").unwrap();
        let mut nl = Netlist::new("redundant", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g1 = nl.add_cell("g1", and2, &[a, b]);
        let g2 = nl.add_cell("g2", and2, &[b, a]);
        let g3 = nl.add_cell("g3", or2, &[g1, g2]);
        let g4 = nl.add_cell("g4", xor2, &[g3, c]);
        nl.add_output("f", g4);
        nl
    }

    /// The pipeline commits the exact substitution sequence of the
    /// sequential path and lands on the same power, area, and delay.
    #[test]
    fn parallel_run_is_bit_identical_to_sequential() {
        for delay_limit in [None, Some(DelayLimit::Factor(1.5))] {
            let mut nl_seq = redundant_circuit();
            let mut nl_par = redundant_circuit();
            let cfg_seq = OptimizeConfig {
                jobs: 1,
                delay_limit,
                ..OptimizeConfig::default()
            };
            let cfg_par = OptimizeConfig {
                jobs: 4,
                ..cfg_seq.clone()
            };
            let r_seq = optimize(&mut nl_seq, &cfg_seq);
            let r_par = optimize(&mut nl_par, &cfg_par);
            nl_par.validate().unwrap();
            assert_eq!(r_par.jobs, 4);
            assert_eq!(r_seq.jobs, 1);
            let subs_seq: Vec<_> = r_seq.applied.iter().map(|a| a.substitution).collect();
            let subs_par: Vec<_> = r_par.applied.iter().map(|a| a.substitution).collect();
            assert_eq!(subs_seq, subs_par, "decision sequences diverged");
            assert_eq!(r_seq.final_power, r_par.final_power, "power diverged");
            assert_eq!(r_seq.final_area, r_par.final_area);
            assert_eq!(r_seq.final_delay, r_par.final_delay);
            assert_eq!(r_seq.atpg_checks, r_par.atpg_checks);
        }
    }

    /// Speculation pays off on the example: at least one proof is
    /// consumed from the cache without recomputation.
    #[test]
    fn pipeline_counters_are_populated() {
        let mut nl = redundant_circuit();
        let cfg = OptimizeConfig {
            jobs: 2,
            ..OptimizeConfig::default()
        };
        let report = optimize(&mut nl, &cfg);
        assert!(!report.applied.is_empty());
        assert!(report.engine.evaluated > 0);
        assert!(report.engine.full_gains > 0);
        assert!(report.engine.proved + report.engine.speculative_hits >= report.atpg_checks);
    }
}
