//! Power-gain analysis of a candidate substitution (paper Section 3.3).
//!
//! The power gain of a transformation decomposes into three contributions:
//!
//! * `PG_A` (Eq. 3) — always ≥ 0: the switched capacitance of the removed
//!   dominated region (the MFFC that dangles once the substituted signal
//!   loses its fanouts) plus the load relief on the region's inputs;
//! * `PG_B` (Eq. 4) — always ≤ 0: the new load placed on the substituting
//!   signal(s), and for 3-input substitutions the new gate itself;
//! * `PG_C` (Eq. 5) — either sign: the change in transition probabilities
//!   throughout the transitive fanout of the substituted signal.
//!
//! `PG_A` and `PG_B` need **no** re-estimation and drive the paper's fast
//! pre-selection; `PG_C` requires a what-if probability propagation over
//! the TFO and is only computed for pre-selected candidates.

use powder_atpg::Substitution;
use powder_netlist::{GateId, GateKind, Netlist};
use powder_power::{PowerEstimator, WhatIfEdit, WhatIfScratch, WhatIfSource};
use std::collections::{BTreeMap, HashMap, HashSet};

/// The decomposed power gain of a substitution. Positive totals reduce
/// circuit power.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerGain {
    /// Eq. (3): removed region + load relief. Never negative.
    pub pg_a: f64,
    /// Eq. (4): new fanout load (and new gate). Never positive.
    pub pg_b: f64,
    /// Eq. (5): transition-probability changes in the TFO; `None` until
    /// [`analyze_full`] fills it in.
    pub pg_c: Option<f64>,
}

impl PowerGain {
    /// The pre-selection figure of merit, `PG_A + PG_B`.
    #[must_use]
    pub fn fast(&self) -> f64 {
        self.pg_a + self.pg_b
    }

    /// The total gain; requires `pg_c` to be filled in.
    ///
    /// # Panics
    ///
    /// Panics if `PG_C` has not been computed.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.pg_a + self.pg_b + self.pg_c.expect("PG_C not computed")
    }
}

/// The set of gates that become dangling (and would be swept) if `sub` were
/// applied — the paper's `Dom(a)` for the power-gain analysis. Accounts for
/// the extra fanout the substitution adds to its sources (a source inside
/// the cone keeps the cone from collapsing past it).
#[must_use]
pub fn removal_set(nl: &Netlist, sub: &Substitution) -> Vec<GateId> {
    let stem = sub.substituted_stem(nl);
    let mut refs: HashMap<GateId, isize> = HashMap::new();
    let count = |nl: &Netlist, g: GateId| nl.fanouts(g).len() as isize;

    // Extra references from the substitution itself: the sources feed the
    // moved branches / the new gate / the new inverter.
    let (b, c) = sub.sources();
    *refs.entry(b).or_insert_with(|| count(nl, b)) += 1;
    if let Some(c) = c {
        *refs.entry(c).or_insert_with(|| count(nl, c)) += 1;
    }

    // The substituted stem loses branches.
    match *sub {
        Substitution::Os2 { a, .. } | Substitution::Os3 { a, .. } => {
            refs.insert(a, 0);
        }
        Substitution::Is2 { .. } | Substitution::Is3 { .. } => {
            *refs.entry(stem).or_insert_with(|| count(nl, stem)) -= 1;
        }
    }

    let mut removed = Vec::new();
    let mut removed_set: HashSet<GateId> = HashSet::new();
    let mut stack = vec![stem];
    while let Some(g) = stack.pop() {
        let r = *refs.entry(g).or_insert_with(|| count(nl, g));
        if r > 0 || removed_set.contains(&g) || !matches!(nl.kind(g), GateKind::Cell(_)) {
            continue;
        }
        removed.push(g);
        removed_set.insert(g);
        for &f in nl.fanins(g) {
            let e = refs.entry(f).or_insert_with(|| count(nl, f));
            *e -= 1;
            if *e <= 0 {
                stack.push(f);
            }
        }
    }
    removed
}

/// Computes `PG_A` and `PG_B` (no re-estimation); `pg_c` is left unset.
#[must_use]
pub fn analyze_fast(nl: &Netlist, est: &PowerEstimator, sub: &Substitution) -> PowerGain {
    let output_load = est.config().output_load;
    let stem = sub.substituted_stem(nl);
    let removed = removal_set(nl, sub);
    let removed_set: HashSet<GateId> = removed.iter().copied().collect();

    // --- PG_A: removed stems' full switched capacitance + load relief. ---
    let mut pg_a = 0.0;
    for &g in &removed {
        pg_a += nl.load_cap(g, output_load) * est.transition(g);
    }
    // Load relief on inputs of the removed region. Ordered map: the
    // relief terms are summed in iteration order below, and float
    // summation order must not depend on hash-map layout — the parallel
    // engine's arbiter compares these totals bit-for-bit.
    let mut relief: BTreeMap<GateId, f64> = BTreeMap::new();
    for &g in &removed {
        for (pin, &f) in nl.fanins(g).iter().enumerate() {
            if !removed_set.contains(&f) {
                let cap = nl
                    .library()
                    .cell_ref(nl.cell_id(g).expect("removed gates are cells"))
                    .pin_cap(pin);
                *relief.entry(f).or_insert(0.0) += cap;
            }
        }
    }
    // For input substitutions where the stem itself survives, the moved
    // branch relieves the stem's load.
    let moved_cap = match *sub {
        Substitution::Os2 { a, .. } | Substitution::Os3 { a, .. } => nl.load_cap(a, output_load),
        Substitution::Is2 { sink, pin, .. } | Substitution::Is3 { sink, pin, .. } => {
            let conn = powder_netlist::Conn { gate: sink, pin };
            let cap = nl.branch_cap(&conn, output_load);
            if !removed_set.contains(&stem) {
                *relief.entry(stem).or_insert(0.0) += cap;
            }
            cap
        }
    };
    for (&g, &cap) in &relief {
        pg_a += cap * est.transition(g);
    }

    // --- PG_B: new load on the substituting signal(s). ---
    let lib = nl.library();
    let (b, c) = sub.sources();
    let pg_b = match *sub {
        Substitution::Os2 { invert, .. } | Substitution::Is2 { invert, .. } => {
            if invert {
                let inv = lib.cell_ref(lib.inverter());
                // b drives the new inverter; the inverter output carries the
                // moved load with E(!b) = E(b).
                -(inv.pin_cap(0) * est.transition(b) + moved_cap * est.transition(b))
            } else {
                -moved_cap * est.transition(b)
            }
        }
        Substitution::Os3 { cell, .. } | Substitution::Is3 { cell, .. } => {
            let cl = lib.cell_ref(cell);
            let c = c.expect("3-substitution has two sources");
            let p_new = powder_power::cell_output_prob(
                &cl.function,
                &[est.probability(b), est.probability(c)],
            );
            let e_new = 2.0 * p_new * (1.0 - p_new);
            -(cl.pin_cap(0) * est.transition(b)
                + cl.pin_cap(1) * est.transition(c)
                + moved_cap * e_new)
        }
    };

    PowerGain {
        pg_a,
        pg_b,
        pg_c: None,
    }
}

/// Computes the complete power gain, including `PG_C` via a what-if
/// re-estimation of the substituted signal's transitive fanout.
///
/// Convenience over [`analyze_full_with`] with a throwaway scratch;
/// hot paths (the optimizer loop, parallel evaluation workers) hold a
/// [`WhatIfScratch`] per evaluation context instead.
#[must_use]
pub fn analyze_full(nl: &Netlist, est: &PowerEstimator, sub: &Substitution) -> PowerGain {
    analyze_full_with(nl, est, sub, &mut WhatIfScratch::default())
}

/// [`analyze_full`] with a caller-owned what-if scratch, making the
/// query allocation-free in the steady state. The result is a pure
/// function of `(nl, est, sub)` — the scratch's prior contents never
/// influence it — so sequential and parallel callers agree
/// bit-for-bit.
#[must_use]
pub fn analyze_full_with(
    nl: &Netlist,
    est: &PowerEstimator,
    sub: &Substitution,
    scratch: &mut WhatIfScratch,
) -> PowerGain {
    let mut gain = analyze_fast(nl, est, sub);
    let output_load = est.config().output_load;

    // Describe the rewiring as what-if edits.
    let lib = nl.library();
    let (b, c) = sub.sources();
    let source = match *sub {
        Substitution::Os2 { invert, .. } | Substitution::Is2 { invert, .. } => {
            if invert {
                WhatIfSource::Prob(1.0 - est.probability(b))
            } else {
                WhatIfSource::Gate(b)
            }
        }
        Substitution::Os3 { cell, .. } | Substitution::Is3 { cell, .. } => {
            let cl = lib.cell_ref(cell);
            let c = c.expect("3-substitution has two sources");
            WhatIfSource::Prob(powder_power::cell_output_prob(
                &cl.function,
                &[est.probability(b), est.probability(c)],
            ))
        }
    };
    let edits: Vec<WhatIfEdit> = sub
        .rewired_branches(nl)
        .into_iter()
        .map(|(sink, pin)| WhatIfEdit { sink, pin, source })
        .collect();

    let removed: HashSet<GateId> = removal_set(nl, sub).into_iter().collect();
    let mut pg_c = 0.0;
    est.whatif_foreach_with(nl, &edits, scratch, |g, p_new| {
        if matches!(nl.kind(g), GateKind::Output) || removed.contains(&g) {
            return;
        }
        let e_old = est.transition(g);
        let e_new = 2.0 * p_new * (1.0 - p_new);
        pg_c += nl.load_cap(g, output_load) * (e_old - e_new);
    });
    gain.pg_c = Some(pg_c);
    gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use powder_library::lib2;
    use powder_power::PowerConfig;
    use std::sync::Arc;

    /// f = (a&b) | (a&!b): OS2(g3 ← a) removes g1, g2, g3.
    fn redundant_or() -> (Netlist, Vec<GateId>) {
        let lib = Arc::new(lib2());
        let and2 = lib.find_by_name("and2").unwrap();
        let andn2 = lib.find_by_name("andn2").unwrap();
        let or2 = lib.find_by_name("or2").unwrap();
        let mut nl = Netlist::new("t", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_cell("g1", and2, &[a, b]);
        let g2 = nl.add_cell("g2", andn2, &[a, b]);
        let g3 = nl.add_cell("g3", or2, &[g1, g2]);
        nl.add_output("f", g3);
        (nl, vec![a, b, g1, g2, g3])
    }

    #[test]
    fn removal_set_of_os2_is_whole_cone() {
        let (nl, ids) = redundant_or();
        let sub = Substitution::Os2 {
            a: ids[4],
            b: ids[0],
            invert: false,
        };
        let mut removed = removal_set(&nl, &sub);
        removed.sort();
        assert_eq!(removed, vec![ids[2], ids[3], ids[4]]);
    }

    #[test]
    fn removal_set_keeps_source_alive() {
        // chain: x -> inv g1 -> inv g2 -> PO. OS2(g2 ← g1, inverted) would
        // normally delete g2's MFFC {g2}; g1 survives because it feeds the
        // new inverter... here the source IS g1 so only g2 goes.
        let lib = Arc::new(lib2());
        let inv = lib.find_by_name("inv1").unwrap();
        let mut nl = Netlist::new("t", lib);
        let x = nl.add_input("x");
        let g1 = nl.add_cell("g1", inv, &[x]);
        let g2 = nl.add_cell("g2", inv, &[g1]);
        nl.add_output("f", g2);
        let sub = Substitution::Os2 {
            a: g2,
            b: x,
            invert: true,
        };
        let removed = removal_set(&nl, &sub);
        // g2 dangles; then g1 dangles too (its only fanout was g2); x is a
        // PI and is never removed.
        assert_eq!(removed.len(), 2);
        assert!(removed.contains(&g1) && removed.contains(&g2));
    }

    #[test]
    fn removal_set_is2_single_fanout_cascade() {
        let (nl, ids) = redundant_or();
        // IS2 rewiring g3's pin0 (driven by g1) to b: g1 dangles.
        let sub = Substitution::Is2 {
            sink: ids[4],
            pin: 0,
            b: ids[1],
            invert: false,
        };
        assert_eq!(removal_set(&nl, &sub), vec![ids[2]]);
    }

    #[test]
    fn pg_a_matches_hand_computation() {
        let (nl, ids) = redundant_or();
        let est = PowerEstimator::new(&nl, &PowerConfig::default());
        let sub = Substitution::Os2 {
            a: ids[4],
            b: ids[0],
            invert: false,
        };
        let g = analyze_fast(&nl, &est, &sub);
        // removed stems: g1 (C=1, p=.25 → E=.375), g2 (C=1, p=.25 → .375),
        // g3 (C=PO load 1; the estimator treats g1,g2 as independent, so
        // p=.25+.25−.0625=.4375 → E=2·.4375·.5625=.4921875).
        // relief: a loses 2 pins (E=.5 → 1.0), b loses 2 pins (E=.5 → 1.0).
        let expect_a = 0.375 + 0.375 + 0.4921875 + 1.0 + 1.0;
        assert!((g.pg_a - expect_a).abs() < 1e-9, "pg_a = {}", g.pg_a);
        // PG_B: a picks up the PO load (1) at E(a)=0.5.
        assert!((g.pg_b + 0.5).abs() < 1e-9, "pg_b = {}", g.pg_b);
    }

    #[test]
    fn pg_total_matches_actual_power_delta() {
        // The decomposition must equal the true before/after difference.
        let (nl, ids) = redundant_or();
        let est = PowerEstimator::new(&nl, &PowerConfig::default());
        let before = est.circuit_power(&nl);
        let sub = Substitution::Os2 {
            a: ids[4],
            b: ids[0],
            invert: false,
        };
        let gain = analyze_full(&nl, &est, &sub);

        let mut after_nl = nl.clone();
        crate::apply::apply_substitution(&mut after_nl, &sub);
        let est2 = PowerEstimator::new(&after_nl, &PowerConfig::default());
        let after = est2.circuit_power(&after_nl);
        assert!(
            (gain.total() - (before - after)).abs() < 1e-9,
            "decomposed {} vs actual {}",
            gain.total(),
            before - after
        );
    }

    #[test]
    fn pg_total_matches_for_is3_with_new_gate() {
        // Figure 2 shape: f = (a ^ c) & b, rewire branch a→xor to AND(a,b).
        let lib = Arc::new(lib2());
        let xor2 = lib.find_by_name("xor2").unwrap();
        let and2 = lib.find_by_name("and2").unwrap();
        let mut nl = Netlist::new("fig2", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_cell("d", xor2, &[a, c]);
        let f = nl.add_cell("f", and2, &[d, b]);
        nl.add_output("fo", f);
        let est = PowerEstimator::new(&nl, &PowerConfig::default());
        let before = est.circuit_power(&nl);
        let sub = Substitution::Is3 {
            sink: d,
            pin: 0,
            cell: and2,
            b: a,
            c: b,
        };
        let gain = analyze_full(&nl, &est, &sub);
        let mut after_nl = nl.clone();
        crate::apply::apply_substitution(&mut after_nl, &sub);
        after_nl.validate().unwrap();
        let est2 = PowerEstimator::new(&after_nl, &PowerConfig::default());
        let after = est2.circuit_power(&after_nl);
        assert!(
            (gain.total() - (before - after)).abs() < 1e-9,
            "decomposed {} vs actual {}",
            gain.total(),
            before - after
        );
    }

    #[test]
    fn pg_total_matches_for_inverted_is2() {
        // f1 = !(a&b) (nand), f2 = a&b (and): rewiring an AND-sink branch
        // to the inverted NAND output.
        let lib = Arc::new(lib2());
        let nand2 = lib.find_by_name("nand2").unwrap();
        let and2 = lib.find_by_name("and2").unwrap();
        let or2 = lib.find_by_name("or2").unwrap();
        let mut nl = Netlist::new("t", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_input("x");
        let g1 = nl.add_cell("g1", nand2, &[a, b]);
        let g2 = nl.add_cell("g2", and2, &[a, b]);
        let g3 = nl.add_cell("g3", or2, &[g2, x]);
        nl.add_output("f1", g1);
        nl.add_output("f2", g3);
        let est = PowerEstimator::new(&nl, &PowerConfig::default());
        let before = est.circuit_power(&nl);
        let sub = Substitution::Is2 {
            sink: g3,
            pin: 0,
            b: g1,
            invert: true,
        };
        let gain = analyze_full(&nl, &est, &sub);
        let mut after_nl = nl.clone();
        crate::apply::apply_substitution(&mut after_nl, &sub);
        after_nl.validate().unwrap();
        let est2 = PowerEstimator::new(&after_nl, &PowerConfig::default());
        let after = est2.circuit_power(&after_nl);
        assert!(
            (gain.total() - (before - after)).abs() < 1e-9,
            "decomposed {} vs actual {}",
            gain.total(),
            before - after
        );
    }
}
