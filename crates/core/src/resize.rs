//! Slack-aware gate re-sizing for power — the adjacent optimisation the
//! paper cites as related work (ref \[14\], Bahar et al.) and the synthesis
//! flow of Figure 1 lists after netlist optimisation.
//!
//! For every cell instance, the pass considers the library cells with the
//! *same function* (up to pin permutation) and switches to the variant with
//! the lowest switched input capacitance whose slower/faster drive still
//! meets the timing constraint. With the built-in library this trades the
//! strong `inv2` against the small `inv1` and vice versa; richer libraries
//! benefit more.

use powder_netlist::{GateId, GateKind, Netlist};
use powder_power::{PowerConfig, PowerEstimator};
use powder_timing::{TimingAnalysis, TimingConfig};

/// Result of a re-sizing pass.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResizeReport {
    /// Gates whose cell was exchanged.
    pub gates_resized: usize,
    /// Switched-capacitance reduction achieved.
    pub power_saved: f64,
}

/// Re-sizes gates to minimise switched capacitance under the given
/// required time (`None`: the current circuit delay must not grow).
///
/// Conservative per-gate legality check: the gate's own delay change plus
/// the input-capacitance change seen by its drivers must fit inside the
/// local slacks.
pub fn resize_for_power(
    nl: &mut Netlist,
    config: &PowerConfig,
    required_time: Option<f64>,
) -> ResizeReport {
    let est0 = PowerEstimator::new(nl, config);
    let before_power = est0.circuit_power(nl);
    let tcfg = TimingConfig {
        output_load: config.output_load,
        required_time,
    };
    let mut report = ResizeReport::default();

    let gates: Vec<GateId> = nl
        .iter_live()
        .filter(|&g| matches!(nl.kind(g), GateKind::Cell(_)))
        .collect();
    for g in gates {
        // Recompute timing/power views fresh enough for a legality check;
        // STA per gate keeps the pass simple and is still O(n²) worst case.
        // The `resize` pipeline pass maintains both views incrementally
        // over a shared session instead.
        let sta = TimingAnalysis::new(nl, &tcfg);
        let est = PowerEstimator::new(nl, config);
        if let Some(cid) = best_swap(nl, &est, &sta, g) {
            swap_cell(nl, g, cid);
            report.gates_resized += 1;
        }
    }
    let est1 = PowerEstimator::new(nl, config);
    report.power_saved = before_power - est1.circuit_power(nl);
    report
}

/// The lowest-switched-capacitance legal replacement cell for `g`, if
/// any improves on the current one: same function and pin order, the
/// gate's own delay change fits its slack, and each driver's delay
/// change (from the pin-capacitance delta) fits that driver's slack.
///
/// `est` and `sta` must reflect the current netlist; the estimator's
/// output-load convention (`est.config().output_load`) is used for the
/// gate's load.
#[must_use]
pub fn best_swap(
    nl: &Netlist,
    est: &PowerEstimator,
    sta: &TimingAnalysis,
    g: GateId,
) -> Option<powder_library::CellId> {
    let lib = nl.library();
    let current = nl.cell_id(g).expect("cell gate");
    let cell = lib.cell_ref(current);
    let load = nl.load_cap(g, est.config().output_load);
    // Cost: switched cap on the gate's input pins.
    let pin_cost = |cid: powder_library::CellId| -> f64 {
        let c = lib.cell_ref(cid);
        nl.fanins(g)
            .iter()
            .enumerate()
            .map(|(pin, &f)| c.pin_cap(pin) * est.transition(f))
            .sum()
    };
    let mut best: Option<(powder_library::CellId, f64)> = None;
    for (cid, cand) in lib.iter() {
        if cid == current || cand.inputs() != cell.inputs() || cand.function != cell.function {
            continue;
        }
        let delay_delta = cand.delay(load) - cell.delay(load);
        if delay_delta > sta.slack(g) + 1e-9 {
            continue;
        }
        let drivers_ok = nl.fanins(g).iter().enumerate().all(|(pin, &f)| {
            let cap_delta = cand.pin_cap(pin) - cell.pin_cap(pin);
            match nl.kind(f) {
                GateKind::Cell(fc) => {
                    let extra = lib.cell_ref(fc).drive_res * cap_delta;
                    extra <= sta.slack(f) + 1e-9
                }
                _ => true,
            }
        });
        if !drivers_ok {
            continue;
        }
        let cost = pin_cost(cid);
        if cost < pin_cost(current) - 1e-12 && best.as_ref().is_none_or(|&(_, c)| cost < c) {
            best = Some((cid, cost));
        }
    }
    best.map(|(cid, _)| cid)
}

/// Replaces the cell of `g` in place (same function, same pin order).
pub fn swap_cell(nl: &mut Netlist, g: GateId, new_cell: powder_library::CellId) {
    // The netlist has no direct "swap cell" primitive; rebuild the gate and
    // move the fanouts over.
    let fanins = nl.fanins(g).to_vec();
    let name = format!("{}_rs", nl.gate_name(g));
    let replacement = nl.add_cell(name, new_cell, &fanins);
    nl.replace_all_fanouts(g, replacement);
    nl.sweep_from(g);
    debug_assert!(nl.validate().is_ok());
}

#[cfg(test)]
mod tests {
    use super::*;
    use powder_library::lib2;
    use std::sync::Arc;

    /// An oversized inverter driving a single small load gets downsized
    /// when there is slack; never when the path is critical.
    #[test]
    fn downsizes_off_critical_inverter() {
        let lib = Arc::new(lib2());
        let inv2 = lib.find_by_name("inv2").unwrap();
        let and2 = lib.find_by_name("and2").unwrap();
        let inv1 = lib.find_by_name("inv1").unwrap();
        let mut nl = Netlist::new("t", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        // Critical path: long inverter chain on b.
        let mut chain = b;
        for i in 0..6 {
            chain = nl.add_cell(format!("c{i}"), inv1, &[chain]);
        }
        // Off-critical: strong inverter on a.
        let big = nl.add_cell("big", inv2, &[a]);
        let g = nl.add_cell("g", and2, &[big, chain]);
        nl.add_output("f", g);

        let report = resize_for_power(&mut nl, &PowerConfig::default(), None);
        nl.validate().unwrap();
        assert_eq!(report.gates_resized, 1, "{report:?}");
        assert!(report.power_saved > 0.0);
        // The strong inverter is gone.
        let remaining: Vec<&str> = nl
            .iter_live()
            .filter_map(|id| nl.cell_id(id))
            .map(|c| nl.library().cell_ref(c).name.as_str())
            .collect();
        assert!(!remaining.contains(&"inv2"), "{remaining:?}");
    }

    #[test]
    fn critical_gate_not_downsized() {
        let lib = Arc::new(lib2());
        let inv2 = lib.find_by_name("inv2").unwrap();
        let mut nl = Netlist::new("t", lib);
        let a = nl.add_input("a");
        // inv2 alone on the (only, hence critical) path with zero slack.
        let big = nl.add_cell("big", inv2, &[a]);
        nl.add_output("f", big);
        let report = resize_for_power(&mut nl, &PowerConfig::default(), None);
        // inv1 is slower into the same load; with zero slack it must stay.
        assert_eq!(report.gates_resized, 0, "{report:?}");
    }

    #[test]
    fn relaxed_required_time_enables_downsizing() {
        let lib = Arc::new(lib2());
        let inv2 = lib.find_by_name("inv2").unwrap();
        let mut nl = Netlist::new("t", lib);
        let a = nl.add_input("a");
        let big = nl.add_cell("big", inv2, &[a]);
        nl.add_output("f", big);
        let report = resize_for_power(&mut nl, &PowerConfig::default(), Some(100.0));
        assert_eq!(report.gates_resized, 1, "{report:?}");
        nl.validate().unwrap();
    }
}
