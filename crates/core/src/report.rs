//! Optimization reports and the per-class statistics behind Table 2.

use powder_atpg::Substitution;
use powder_engine::EngineStats;
use std::fmt;

/// The four substitution classes of the paper (inverted variants count
/// toward their base class).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum SubClass {
    /// Output substitution by an existing signal.
    Os2,
    /// Input (branch) substitution by an existing signal.
    Is2,
    /// Output substitution by a new two-input gate.
    Os3,
    /// Input substitution by a new two-input gate.
    Is3,
}

impl SubClass {
    /// All classes, in the paper's Table 2 order.
    pub const ALL: [SubClass; 4] = [SubClass::Os2, SubClass::Is2, SubClass::Os3, SubClass::Is3];

    /// Class of a substitution.
    #[must_use]
    pub fn of(sub: &Substitution) -> Self {
        match sub {
            Substitution::Os2 { .. } => SubClass::Os2,
            Substitution::Is2 { .. } => SubClass::Is2,
            Substitution::Os3 { .. } => SubClass::Os3,
            Substitution::Is3 { .. } => SubClass::Is3,
        }
    }
}

impl fmt::Display for SubClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SubClass::Os2 => "OS2",
            SubClass::Is2 => "IS2",
            SubClass::Os3 => "OS3",
            SubClass::Is3 => "IS3",
        };
        f.write_str(s)
    }
}

/// One committed substitution with its measured effect.
#[derive(Clone, Debug)]
pub struct AppliedSubstitution {
    /// The substitution that was performed.
    pub substitution: Substitution,
    /// Its class.
    pub class: SubClass,
    /// Measured power reduction (positive = saved).
    pub power_saved: f64,
    /// Measured area change (positive = grew).
    pub area_delta: f64,
}

/// Aggregated per-class effect (the rows of the paper's Table 2).
#[derive(Clone, Copy, Debug, Default)]
pub struct ClassStats {
    /// Number of substitutions committed.
    pub count: usize,
    /// Total power saved by this class.
    pub power_saved: f64,
    /// Total area change caused by this class (negative = shrank).
    pub area_delta: f64,
}

/// Wall-clock seconds the optimizer spent in each phase of its loop.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Logic simulation: initial/full passes plus post-commit cone
    /// resimulation.
    pub simulation: f64,
    /// Candidate generation (fault-simulation filtering).
    pub candidates: f64,
    /// Power-gain analysis: `PG_A + PG_B` scoring and full `PG_C`
    /// what-if re-estimation of pre-selected candidates.
    pub gain: f64,
    /// Static timing: per-candidate §3.4 checks plus post-commit
    /// arrival/required refreshes.
    pub timing: f64,
    /// Exact ATPG permissibility checks.
    pub atpg: f64,
    /// Committing substitutions: netlist edits, dirty-region drains,
    /// cone computation, and power bookkeeping.
    pub apply: f64,
}

impl PhaseTimes {
    /// Total seconds across all tracked phases.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.simulation + self.candidates + self.gain + self.timing + self.atpg + self.apply
    }

    /// Folds another breakdown into this one (used when merging
    /// per-window reports into the run total).
    pub fn accumulate(&mut self, other: &PhaseTimes) {
        self.simulation += other.simulation;
        self.candidates += other.candidates;
        self.gain += other.gain;
        self.timing += other.timing;
        self.atpg += other.atpg;
        self.apply += other.apply;
    }
}

/// How often each analysis was refreshed incrementally (over the dirty
/// cone of the committed edit) versus rebuilt from scratch. Only in-loop
/// refreshes are counted; the one-time initial constructions are not.
#[derive(Clone, Copy, Debug, Default)]
pub struct IncrementalStats {
    /// Full STA rebuilds after a committed substitution.
    pub full_sta_rebuilds: usize,
    /// Incremental STA updates over the dirty region.
    pub incremental_sta_updates: usize,
    /// Whole-netlist simulation passes.
    pub full_resims: usize,
    /// Post-commit cone resimulations into the retained value buffer.
    pub incremental_resims: usize,
    /// O(n) circuit-power scans performed for commit bookkeeping.
    pub full_power_rescans: usize,
    /// Incremental power updates (running-total adjustment over the
    /// dirty cone).
    pub incremental_power_updates: usize,
    /// Cross-checks of incremental state against from-scratch
    /// recomputation (only in `cross_check` mode).
    pub cross_checks: usize,
}

/// Commit-guard activity: every committed substitution passes through a
/// transactional checkpoint/verify cycle (see `guard.rs`), and these
/// counters record what the guard saw.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Commits whose post-apply verification passed.
    pub verified: usize,
    /// Commits applied without verification (no retained simulation
    /// values to check against).
    pub skipped: usize,
    /// Post-apply verifications that found a changed primary-output
    /// signature.
    pub mismatches: usize,
    /// Commits rolled back to their checkpoint.
    pub rollbacks: usize,
    /// Escalated ATPG re-proofs run to classify a mismatch.
    pub escalations: usize,
    /// Candidates quarantined for the rest of the run.
    pub quarantined: usize,
}

/// Why a candidate was quarantined after a verification mismatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The escalated ATPG re-proof refuted the original Permissible
    /// verdict: the substitution really was unsound.
    Refuted,
    /// The escalated re-proof still says Permissible, so the mismatch
    /// points at drifted incremental state (or an injected fault)
    /// rather than the candidate itself.
    Inconsistent,
    /// The escalated re-proof aborted on its budget; treated as unsound
    /// conservatively.
    Unproven,
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QuarantineReason::Refuted => "refuted",
            QuarantineReason::Inconsistent => "inconsistent",
            QuarantineReason::Unproven => "unproven",
        };
        f.write_str(s)
    }
}

/// A substitution the commit guard rolled back and barred from the run.
#[derive(Clone, Copy, Debug)]
pub struct QuarantinedCandidate {
    /// The offending substitution.
    pub substitution: Substitution,
    /// Its class.
    pub class: SubClass,
    /// The escalated re-proof's classification of the failure.
    pub reason: QuarantineReason,
}

/// Outcome of one window processed by the windowed driver (see
/// `OptimizeConfig::window_size`): the benchmark harness renders these
/// as per-window phase rows, and the scaling analysis reads the
/// core/scope sizes to verify the partitioner held its bounds.
#[derive(Clone, Debug)]
pub struct WindowReport {
    /// Position of the window in its plan (processing order).
    pub index: usize,
    /// Rewrite-target gates the window owned (its core).
    pub core_gates: usize,
    /// Gates visible to the window (core, halo, and boundary).
    pub scope_gates: usize,
    /// Substitutions committed inside the window.
    pub commits: usize,
    /// Power saved by this window's commits.
    pub power_saved: f64,
    /// Per-phase wall-clock breakdown of the window's inner run.
    pub phase: PhaseTimes,
    /// Wall-clock seconds the window took end to end.
    pub seconds: f64,
}

/// The result of running the optimizer on one circuit.
#[derive(Clone, Debug)]
pub struct OptimizeReport {
    /// `Σ C·E` before optimization.
    pub initial_power: f64,
    /// `Σ C·E` after optimization.
    pub final_power: f64,
    /// Total gate area before.
    pub initial_area: f64,
    /// Total gate area after.
    pub final_area: f64,
    /// Circuit delay before.
    pub initial_delay: f64,
    /// Circuit delay after.
    pub final_delay: f64,
    /// Every committed substitution, in order.
    pub applied: Vec<AppliedSubstitution>,
    /// Number of outer candidate-generation rounds executed.
    pub rounds: usize,
    /// Number of exact ATPG checks run.
    pub atpg_checks: usize,
    /// Exact checks rejected (non-permissible or aborted).
    pub atpg_rejections: usize,
    /// Candidates discarded by the delay constraint.
    pub delay_rejections: usize,
    /// Wall-clock seconds spent.
    pub cpu_seconds: f64,
    /// Per-phase wall-clock breakdown of `cpu_seconds`.
    pub phase: PhaseTimes,
    /// Incremental-versus-full refresh counters.
    pub incremental: IncrementalStats,
    /// Resolved worker count the run used (1 = sequential path).
    pub jobs: usize,
    /// Candidate-evaluation pipeline counters and stage wall times.
    pub engine: EngineStats,
    /// Transactional commit-guard counters.
    pub guard: GuardStats,
    /// Candidates the guard rolled back and quarantined, in order.
    pub quarantined: Vec<QuarantinedCandidate>,
    /// Per-window rows when the windowed driver ran; empty for
    /// whole-netlist runs. In windowed mode [`OptimizeReport::rounds`]
    /// counts completed windows instead of candidate rounds.
    pub windows: Vec<WindowReport>,
    /// Whether the run stopped early because its wall-clock deadline
    /// expired (the report then describes the best-so-far netlist).
    pub deadline_hit: bool,
    /// Whether the run stopped early on a cooperative stop request
    /// (SIGINT, daemon drain, job cancellation). Like `deadline_hit`,
    /// the report then describes the best-so-far netlist.
    pub interrupted: bool,
}

impl OptimizeReport {
    /// Power reduction as a percentage of the initial power.
    #[must_use]
    pub fn power_reduction_percent(&self) -> f64 {
        if self.initial_power <= 0.0 {
            0.0
        } else {
            100.0 * (self.initial_power - self.final_power) / self.initial_power
        }
    }

    /// Area reduction as a percentage of the initial area.
    #[must_use]
    pub fn area_reduction_percent(&self) -> f64 {
        if self.initial_area <= 0.0 {
            0.0
        } else {
            100.0 * (self.initial_area - self.final_area) / self.initial_area
        }
    }

    /// Per-class totals (Table 2 input).
    #[must_use]
    pub fn class_stats(&self) -> [(SubClass, ClassStats); 4] {
        let mut out = SubClass::ALL.map(|c| (c, ClassStats::default()));
        for a in &self.applied {
            let slot = &mut out
                .iter_mut()
                .find(|(c, _)| *c == a.class)
                .expect("all classes present")
                .1;
            slot.count += 1;
            slot.power_saved += a.power_saved;
            slot.area_delta += a.area_delta;
        }
        out
    }
}

impl fmt::Display for OptimizeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "power {:.3} -> {:.3} ({:+.1}%), area {:.0} -> {:.0} ({:+.1}%), delay {:.2} -> {:.2}",
            self.initial_power,
            self.final_power,
            -self.power_reduction_percent(),
            self.initial_area,
            self.final_area,
            -self.area_reduction_percent(),
            self.initial_delay,
            self.final_delay,
        )?;
        writeln!(
            f,
            "{} substitutions in {} rounds ({} ATPG checks, {} rejected, {} delay-rejected), {:.1}s",
            self.applied.len(),
            self.rounds,
            self.atpg_checks,
            self.atpg_rejections,
            self.delay_rejections,
            self.cpu_seconds,
        )?;
        writeln!(
            f,
            "refreshes: sta {}i/{}f, sim {}i/{}f, power {}i/{}f",
            self.incremental.incremental_sta_updates,
            self.incremental.full_sta_rebuilds,
            self.incremental.incremental_resims,
            self.incremental.full_resims,
            self.incremental.incremental_power_updates,
            self.incremental.full_power_rescans,
        )?;
        write!(
            f,
            "engine: jobs {}, {} scored, {} filtered, {} full gains, {} proofs \
             ({} speculative hits), {} invalidated, {} retried",
            self.jobs,
            self.engine.evaluated,
            self.engine.filtered,
            self.engine.full_gains,
            self.engine.proved,
            self.engine.speculative_hits,
            self.engine.invalidated,
            self.engine.retried,
        )?;
        write!(
            f,
            "\nguard: {} verified, {} skipped",
            self.guard.verified, self.guard.skipped
        )?;
        if self.guard.mismatches > 0 {
            write!(
                f,
                ", {} mismatches ({} rolled back, {} quarantined)",
                self.guard.mismatches, self.guard.rollbacks, self.guard.quarantined
            )?;
        }
        if self.engine.worker_panics > 0 || self.engine.degraded_phases > 0 {
            write!(
                f,
                "\nworkers: {} panics, {} batches quarantined, {} degraded phases",
                self.engine.worker_panics,
                self.engine.quarantined_batches,
                self.engine.degraded_phases
            )?;
        }
        if !self.windows.is_empty() {
            let core: usize = self.windows.iter().map(|w| w.core_gates).sum();
            write!(
                f,
                "\nwindows: {} processed covering {} core gates",
                self.windows.len(),
                core
            )?;
        }
        if self.deadline_hit {
            write!(f, "\ndeadline hit: best-so-far result emitted")?;
        }
        if self.interrupted {
            write!(f, "\ninterrupted: best-so-far result emitted")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powder_netlist::GateId;

    #[test]
    fn class_of_substitutions() {
        let os2 = Substitution::Os2 {
            a: GateId(0),
            b: GateId(1),
            invert: true,
        };
        assert_eq!(SubClass::of(&os2), SubClass::Os2);
        assert_eq!(SubClass::Os2.to_string(), "OS2");
    }

    #[test]
    fn report_percentages_and_stats() {
        let applied = vec![
            AppliedSubstitution {
                substitution: Substitution::Os2 {
                    a: GateId(0),
                    b: GateId(1),
                    invert: false,
                },
                class: SubClass::Os2,
                power_saved: 3.0,
                area_delta: -100.0,
            },
            AppliedSubstitution {
                substitution: Substitution::Is2 {
                    sink: GateId(2),
                    pin: 0,
                    b: GateId(1),
                    invert: false,
                },
                class: SubClass::Is2,
                power_saved: 1.0,
                area_delta: 50.0,
            },
        ];
        let r = OptimizeReport {
            initial_power: 10.0,
            final_power: 6.0,
            initial_area: 1000.0,
            final_area: 950.0,
            initial_delay: 5.0,
            final_delay: 5.0,
            applied,
            rounds: 1,
            atpg_checks: 2,
            atpg_rejections: 0,
            delay_rejections: 0,
            cpu_seconds: 0.1,
            phase: PhaseTimes::default(),
            incremental: IncrementalStats::default(),
            jobs: 1,
            engine: EngineStats::default(),
            guard: GuardStats {
                verified: 2,
                ..GuardStats::default()
            },
            quarantined: Vec::new(),
            windows: Vec::new(),
            deadline_hit: false,
            interrupted: false,
        };
        assert!((r.power_reduction_percent() - 40.0).abs() < 1e-12);
        assert!((r.area_reduction_percent() - 5.0).abs() < 1e-12);
        let stats = r.class_stats();
        assert_eq!(stats[0].1.count, 1);
        assert!((stats[0].1.power_saved - 3.0).abs() < 1e-12);
        assert_eq!(stats[1].1.count, 1);
        assert_eq!(stats[2].1.count, 0);
        let shown = r.to_string();
        assert!(shown.contains("substitutions"));
        assert!(shown.contains("guard: 2 verified, 0 skipped"));
        assert!(
            !shown.contains("deadline hit"),
            "deadline note only shown when the deadline fired"
        );
    }

    #[test]
    fn quarantine_reason_display() {
        assert_eq!(QuarantineReason::Refuted.to_string(), "refuted");
        assert_eq!(QuarantineReason::Inconsistent.to_string(), "inconsistent");
        assert_eq!(QuarantineReason::Unproven.to_string(), "unproven");
    }
}
