//! Glitch-aware power estimation — an *extension* beyond the paper.
//!
//! The paper uses a zero-delay model and notes (Section 2) that glitches
//! contribute roughly 20 % of total power but are hard to model at the
//! logic level. This module quantifies that contribution for our circuits:
//! an event-driven **unit-delay** simulation counts every transition each
//! gate makes while a new input vector settles — including hazards that the
//! zero-delay model ignores — giving
//!
//! ```text
//! P_glitch ∝ Σ_i C(i) · (T_total(i) − T_functional(i)) / vectors
//! ```
//!
//! where `T_functional` counts only the transitions between settled states
//! (what `E(i)` models) and `T_total` counts every event.

use crate::PowerConfig;
use powder_netlist::{GateId, GateKind, Netlist};
use powder_sim::{CellCovers, Patterns};
use std::collections::VecDeque;

/// Result of a glitch-aware activity measurement.
#[derive(Clone, Debug)]
pub struct GlitchReport {
    /// Zero-delay (functional) switched capacitance per vector pair.
    pub functional_power: f64,
    /// Total switched capacitance per vector pair, including hazards.
    pub total_power: f64,
}

impl GlitchReport {
    /// The glitch share of total power, in `[0, 1)`.
    #[must_use]
    pub fn glitch_fraction(&self) -> f64 {
        if self.total_power <= 0.0 {
            0.0
        } else {
            (self.total_power - self.functional_power) / self.total_power
        }
    }
}

/// Measures functional and glitch activity by unit-delay event simulation
/// of consecutive random vector pairs.
///
/// Each gate has delay 1; when an input vector changes, events ripple level
/// by level and every output change is charged `C(i)`. The functional
/// charge uses only initial-vs-settled values.
///
/// # Panics
///
/// Panics if `patterns` does not cover the netlist's inputs.
#[must_use]
pub fn glitch_power(
    nl: &Netlist,
    covers: &CellCovers,
    patterns: &Patterns,
    config: &PowerConfig,
) -> GlitchReport {
    assert_eq!(patterns.inputs(), nl.inputs().len(), "pattern arity");
    let order = nl.topo_order();
    let bound = nl.id_bound();
    let mut value = vec![false; bound];
    let mut functional_toggles = vec![0u64; bound];
    let mut total_toggles = vec![0u64; bound];

    let vector_of = |t: usize, i: usize| -> bool {
        let w = patterns.input_bits(i);
        (w[t / 64] >> (t % 64)) & 1 == 1
    };
    let eval_gate = |nl: &Netlist, value: &[bool], g: GateId| -> bool {
        match nl.kind(g) {
            GateKind::Input | GateKind::Const(_) | GateKind::Output => {
                unreachable!("only cells are evaluated")
            }
            GateKind::Cell(c) => {
                let mut word_in = [0u64; 8];
                for (pin, &f) in nl.fanins(g).iter().enumerate() {
                    word_in[pin] = if value[f.0 as usize] { u64::MAX } else { 0 };
                }
                covers.eval_word(c, &word_in[..nl.fanins(g).len()]) & 1 == 1
            }
        }
    };

    // Settle vector 0.
    for (i, &pi) in nl.inputs().iter().enumerate() {
        value[pi.0 as usize] = vector_of(0, i);
    }
    for &g in &order {
        match nl.kind(g) {
            GateKind::Cell(_) => value[g.0 as usize] = eval_gate(nl, &value, g),
            GateKind::Const(v) => value[g.0 as usize] = v,
            GateKind::Output => value[g.0 as usize] = value[nl.fanins(g)[0].0 as usize],
            GateKind::Input => {}
        }
    }

    let total_vectors = patterns.count();
    for t in 1..total_vectors {
        let settled_before = value.clone();
        // Event queue keyed by unit-delay time: (time, gate).
        let mut queue: VecDeque<(u32, GateId)> = VecDeque::new();
        for (i, &pi) in nl.inputs().iter().enumerate() {
            let nv = vector_of(t, i);
            if nv != value[pi.0 as usize] {
                value[pi.0 as usize] = nv;
                total_toggles[pi.0 as usize] += 1;
                for conn in nl.fanouts(pi) {
                    queue.push_back((1, conn.gate));
                }
            }
        }
        // Process events time-ordered; a gate scheduled multiple times at
        // the same tick evaluates once per tick.
        while let Some((time, g)) = queue.pop_front() {
            if matches!(nl.kind(g), GateKind::Output) {
                continue;
            }
            let nv = eval_gate(nl, &value, g);
            if nv != value[g.0 as usize] {
                value[g.0 as usize] = nv;
                total_toggles[g.0 as usize] += 1;
                for conn in nl.fanouts(g) {
                    // De-duplicate same-tick evaluations lazily: a second
                    // event just re-evaluates, which is idempotent. Acyclic
                    // logic under unit delays always settles, so the queue
                    // drains within `depth` ticks.
                    queue.push_back((time + 1, conn.gate));
                }
            }
        }
        // Functional toggles: settled-state difference.
        for &g in &order {
            if value[g.0 as usize] != settled_before[g.0 as usize] {
                functional_toggles[g.0 as usize] += 1;
            }
        }
    }

    let pairs = (total_vectors - 1) as f64;
    let mut functional_power = 0.0;
    let mut total_power = 0.0;
    for g in nl.iter_live() {
        if matches!(nl.kind(g), GateKind::Output) {
            continue;
        }
        let cap = nl.load_cap(g, config.output_load);
        functional_power += cap * functional_toggles[g.0 as usize] as f64 / pairs;
        total_power += cap * total_toggles[g.0 as usize] as f64 / pairs;
    }
    GlitchReport {
        functional_power,
        total_power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powder_library::lib2;
    use std::sync::Arc;

    /// A balanced XOR has no hazards under unit delays; an unbalanced
    /// AND-path reconvergence does.
    #[test]
    fn balanced_tree_has_no_glitches() {
        let lib = Arc::new(lib2());
        let xor2 = lib.find_by_name("xor2").unwrap();
        let mut nl = Netlist::new("bal", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_cell("g", xor2, &[a, b]);
        nl.add_output("f", g);
        let covers = CellCovers::new(nl.library());
        let pats = Patterns::random(2, 8, 5);
        let rep = glitch_power(&nl, &covers, &pats, &PowerConfig::default());
        assert!(
            rep.glitch_fraction() < 1e-9,
            "single gate cannot glitch: {rep:?}"
        );
        assert!(rep.functional_power > 0.0);
    }

    /// The classic static-hazard circuit: f = (a·s) + (b·!s) with unequal
    /// path lengths to the OR — unit-delay simulation must observe more
    /// transitions than the zero-delay model.
    #[test]
    fn unbalanced_paths_glitch() {
        let lib = Arc::new(lib2());
        let and2 = lib.find_by_name("and2").unwrap();
        let inv = lib.find_by_name("inv1").unwrap();
        let or2 = lib.find_by_name("or2").unwrap();
        let xor2 = lib.find_by_name("xor2").unwrap();
        let mut nl = Netlist::new("hz", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let s = nl.add_input("s");
        // lengthen one path with a pair of inverters-as-xor chain
        let s1 = nl.add_cell("s1", inv, &[s]);
        let s2 = nl.add_cell("s2", inv, &[s1]);
        let s3 = nl.add_cell("s3", xor2, &[s2, a]);
        let t1 = nl.add_cell("t1", and2, &[s3, b]);
        let t2 = nl.add_cell("t2", and2, &[s, a]);
        let f = nl.add_cell("f", or2, &[t1, t2]);
        nl.add_output("o", f);
        let covers = CellCovers::new(nl.library());
        let pats = Patterns::random(3, 32, 11);
        let rep = glitch_power(&nl, &covers, &pats, &PowerConfig::default());
        assert!(
            rep.total_power > rep.functional_power,
            "unbalanced reconvergence must produce hazards: {rep:?}"
        );
        assert!(rep.glitch_fraction() > 0.0 && rep.glitch_fraction() < 1.0);
    }

    /// Functional activity from event simulation must agree with the
    /// zero-delay transition probabilities within sampling error.
    #[test]
    fn functional_activity_matches_estimator() {
        use crate::{PowerConfig, PowerEstimator};
        let lib = Arc::new(lib2());
        let and2 = lib.find_by_name("and2").unwrap();
        let or2 = lib.find_by_name("or2").unwrap();
        let mut nl = Netlist::new("t", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g1 = nl.add_cell("g1", and2, &[a, b]);
        let g2 = nl.add_cell("g2", or2, &[g1, c]);
        nl.add_output("f", g2);
        let covers = CellCovers::new(nl.library());
        let pats = Patterns::random(3, 256, 23);
        let rep = glitch_power(&nl, &covers, &pats, &PowerConfig::default());
        let est = PowerEstimator::new(&nl, &PowerConfig::default());
        let analytic = est.circuit_power(&nl);
        let ratio = rep.functional_power / analytic;
        assert!(
            (0.9..1.1).contains(&ratio),
            "event-based functional power {} vs analytic {}",
            rep.functional_power,
            analytic
        );
    }
}
