//! Zero-delay power estimation for mapped netlists (paper Section 2).
//!
//! The power dissipated by a mapped CMOS circuit under the zero-delay model
//! is
//!
//! ```text
//! P = ½ · Vdd² · f · Σ_i C(i) · E(i)
//! ```
//!
//! where `C(i)` is the capacitive load driven by stem `i` and
//! `E(i) = 2·p(i)·(1 − p(i))` its transition probability under temporal
//! independence of the primary inputs. At the logic level `Vdd` and `f` are
//! fixed, so the optimizer minimises the *switched capacitance*
//! `Σ C(i)·E(i)` — exactly the "power" column of the paper's Table 1.
//!
//! Signal probabilities are propagated in topological order assuming the
//! fanins of each gate are independent (the assumption of refs \[6,12\] the
//! paper adopts); a Monte-Carlo cross-check lives in this crate's tests.
//!
//! [`PowerEstimator::whatif_probabilities`] answers "what would the
//! probabilities in `TFO(a)` become under this substitution?" without
//! touching the netlist — the workhorse behind the paper's `PG_C` term
//! (Eq. 5) — and [`PowerEstimator::update_cone`] performs the committed
//! incremental re-estimation of `power_estimate_update` (Fig. 5).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use powder_library::lib2;
//! use powder_netlist::Netlist;
//! use powder_power::{PowerConfig, PowerEstimator};
//!
//! let lib = Arc::new(lib2());
//! let and2 = lib.find_by_name("and2").unwrap();
//! let mut nl = Netlist::new("demo", lib);
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let g = nl.add_cell("g", and2, &[a, b]);
//! nl.add_output("f", g);
//! let est = PowerEstimator::new(&nl, &PowerConfig::default());
//! assert!((est.probability(g) - 0.25).abs() < 1e-12);
//! assert!(est.circuit_power(&nl) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod glitch;

use powder_netlist::{ConeScratch, GateId, GateKind, Netlist};
use std::collections::HashMap;

/// Configuration of the power model.
#[derive(Clone, Debug)]
pub struct PowerConfig {
    /// Capacitive load presented by each primary output.
    pub output_load: f64,
    /// Signal probability of each primary input, in input order; inputs
    /// beyond the vector's length default to 0.5.
    pub input_probs: Vec<f64>,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            output_load: 1.0,
            input_probs: Vec::new(),
        }
    }
}

impl PowerConfig {
    /// Probability of primary input `index`.
    #[must_use]
    pub fn input_prob(&self, index: usize) -> f64 {
        self.input_probs.get(index).copied().unwrap_or(0.5)
    }
}

/// The source feeding a rewired pin in a what-if query.
#[derive(Clone, Copy, Debug)]
pub enum WhatIfSource {
    /// An existing gate's stem.
    Gate(GateId),
    /// A hypothetical new signal with the given probability (e.g. the
    /// output of the gate an OS3/IS3 substitution would insert).
    Prob(f64),
}

/// One rewired pin in a what-if query: `sink`'s input `pin` is fed by
/// `source` instead of its current driver.
#[derive(Clone, Copy, Debug)]
pub struct WhatIfEdit {
    /// The sink gate whose pin is rewired.
    pub sink: GateId,
    /// The rewired input pin.
    pub pin: u32,
    /// The hypothetical new driver.
    pub source: WhatIfSource,
}

/// Reusable buffers for [`PowerEstimator::whatif_foreach_with`], making
/// the per-candidate what-if query allocation-free in the steady state.
/// Overlay probabilities are tracked with a stamp array so no per-query
/// clearing is needed.
///
/// The scratch is owned by the caller (one per evaluation context —
/// the sequential optimizer holds one, each parallel worker holds its
/// own), which keeps [`PowerEstimator`] free of interior mutability
/// and therefore `Sync`: an immutable estimator can serve what-if
/// queries from many threads concurrently.
#[derive(Clone, Debug, Default)]
pub struct WhatIfScratch {
    cone: ConeScratch,
    region: Vec<GateId>,
    overlay: Vec<f64>,
    stamp: Vec<u32>,
    round: u32,
    fanin_probs: Vec<f64>,
}

/// Signal-probability and switched-capacitance estimator.
///
/// Probabilities and per-stem switched-capacitance contributions are
/// stored per raw gate id and kept consistent with the netlist through
/// [`PowerEstimator::update_cone`] / [`PowerEstimator::retire_gates`]
/// after each committed edit; the circuit total is maintained as a
/// running sum readable in O(1) via [`PowerEstimator::total_power`].
#[derive(Clone, Debug)]
pub struct PowerEstimator {
    config: PowerConfig,
    probs: Vec<f64>,
    /// Cached per-gate `C(i)·E(i)` as last folded into `total`; zero for
    /// primary outputs and dead gates.
    contrib: Vec<f64>,
    /// Running `Σ C(i)·E(i)` over live non-output gates.
    total: f64,
}

impl PowerEstimator {
    /// Computes probabilities for the whole netlist (the paper's initial
    /// `power_estimate`).
    #[must_use]
    pub fn new(nl: &Netlist, config: &PowerConfig) -> Self {
        let mut est = PowerEstimator {
            config: config.clone(),
            probs: vec![0.0; nl.id_bound()],
            contrib: vec![0.0; nl.id_bound()],
            total: 0.0,
        };
        for (i, &pi) in nl.inputs().iter().enumerate() {
            est.probs[pi.0 as usize] = config.input_prob(i);
        }
        let order = nl.topo_order();
        est.update_cone(nl, &order);
        est
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &PowerConfig {
        &self.config
    }

    /// Signal probability of gate `id`.
    #[must_use]
    pub fn probability(&self, id: GateId) -> f64 {
        self.probs[id.0 as usize]
    }

    /// Transition probability `E(id) = 2·p·(1−p)`.
    #[must_use]
    pub fn transition(&self, id: GateId) -> f64 {
        let p = self.probability(id);
        2.0 * p * (1.0 - p)
    }

    /// Switched capacitance of one stem: `C(id)·E(id)`.
    #[must_use]
    pub fn switched_cap(&self, nl: &Netlist, id: GateId) -> f64 {
        nl.load_cap(id, self.config.output_load) * self.transition(id)
    }

    /// The circuit's total switched capacitance `Σ_i C(i)·E(i)` — the
    /// "power" the paper reports and POWDER minimises — recomputed from
    /// scratch by scanning every live gate. Serves as the reference for
    /// the running total kept by [`PowerEstimator::total_power`].
    #[must_use]
    pub fn circuit_power(&self, nl: &Netlist) -> f64 {
        nl.iter_live()
            .filter(|&id| !matches!(nl.kind(id), GateKind::Output))
            .map(|id| self.switched_cap(nl, id))
            .sum()
    }

    /// The running `Σ C(i)·E(i)` total, maintained incrementally by
    /// [`PowerEstimator::update_cone`] and
    /// [`PowerEstimator::retire_gates`]. O(1); agrees with
    /// [`PowerEstimator::circuit_power`] up to floating-point
    /// accumulation order.
    #[must_use]
    pub fn total_power(&self) -> f64 {
        self.total
    }

    /// Recomputes the probabilities *and* switched-capacitance
    /// contributions of `cone` (must be topologically ordered) from the
    /// current netlist state, adjusting the running total — the
    /// incremental `power_estimate_update` of Fig. 5. The cone must
    /// include every gate whose load changed (drivers that gained or
    /// lost fanout branches), which [`Netlist::dirty_cone`] guarantees.
    /// Newly added gates (ids beyond the estimator's previous bound) are
    /// accommodated automatically.
    pub fn update_cone(&mut self, nl: &Netlist, cone: &[GateId]) {
        if self.probs.len() < nl.id_bound() {
            self.probs.resize(nl.id_bound(), 0.5);
            self.contrib.resize(nl.id_bound(), 0.0);
        }
        for &id in cone {
            let i = id.0 as usize;
            match nl.kind(id) {
                GateKind::Input => {}
                GateKind::Const(v) => self.probs[i] = f64::from(u8::from(v)),
                GateKind::Output => {
                    self.probs[i] = self.probs[nl.fanins(id)[0].0 as usize];
                }
                GateKind::Cell(c) => {
                    let cell = nl.library().cell_ref(c);
                    let fanin_probs: Vec<f64> = nl
                        .fanins(id)
                        .iter()
                        .map(|f| self.probs[f.0 as usize])
                        .collect();
                    self.probs[i] = cell_output_prob(&cell.function, &fanin_probs);
                }
            }
            let c_new = if matches!(nl.kind(id), GateKind::Output) {
                0.0
            } else {
                self.switched_cap(nl, id)
            };
            self.total += c_new - self.contrib[i];
            self.contrib[i] = c_new;
        }
    }

    /// Drops the contributions of removed gates from the running total.
    /// Call with [`powder_netlist::DirtyRegion::removed`] after a sweep.
    pub fn retire_gates(&mut self, removed: &[GateId]) {
        for &id in removed {
            if let Some(slot) = self.contrib.get_mut(id.0 as usize) {
                self.total -= *slot;
                *slot = 0.0;
            }
        }
    }

    /// Visits every gate whose probability would change if the given
    /// pins were rewired — the edit sinks plus their joint transitive
    /// fanout, in topological order — calling `visit(gate, new_prob)`
    /// for each, without modifying the netlist.
    ///
    /// This is the per-candidate hot path behind the paper's `PG_C`
    /// term: all bookkeeping lives in the caller-owned
    /// [`WhatIfScratch`], so repeated queries perform no allocation in
    /// the steady state and touch only the affected region (no global
    /// topological sort). Results do not depend on the scratch's prior
    /// contents, so any scratch — fresh or reused, shared or
    /// per-worker — yields bit-identical visits.
    pub fn whatif_foreach_with(
        &self,
        nl: &Netlist,
        edits: &[WhatIfEdit],
        s: &mut WhatIfScratch,
        mut visit: impl FnMut(GateId, f64),
    ) {
        if edits.is_empty() {
            return;
        }
        let bound = nl.id_bound();
        if s.overlay.len() < bound {
            s.overlay.resize(bound, 0.0);
            s.stamp.resize(bound, 0);
        }
        if s.round == u32::MAX {
            s.stamp.iter_mut().for_each(|t| *t = 0);
            s.round = 0;
        }
        s.round += 1;
        let r = s.round;

        s.region.clear();
        s.cone
            .cone_topo(nl, edits.iter().map(|e| e.sink), &mut s.region);

        for &g in &s.region {
            // Hypothetical probability of a fanin: the overlay value if
            // this query already recomputed it, the committed one
            // otherwise.
            let lookup = |src: GateId, stamp: &[u32], overlay: &[f64]| {
                let i = src.0 as usize;
                if stamp[i] == r {
                    overlay[i]
                } else {
                    self.probs[i]
                }
            };
            let p = match nl.kind(g) {
                GateKind::Input | GateKind::Const(_) => self.probs[g.0 as usize],
                GateKind::Output => {
                    let src = nl.fanins(g)[0];
                    lookup(src, &s.stamp, &s.overlay)
                }
                GateKind::Cell(c) => {
                    let cell = nl.library().cell_ref(c);
                    s.fanin_probs.clear();
                    for (pin, &f) in nl.fanins(g).iter().enumerate() {
                        let edit = edits.iter().find(|e| e.sink == g && e.pin == pin as u32);
                        let p = match edit {
                            Some(e) => match e.source {
                                WhatIfSource::Gate(src) => lookup(src, &s.stamp, &s.overlay),
                                WhatIfSource::Prob(p) => p,
                            },
                            None => lookup(f, &s.stamp, &s.overlay),
                        };
                        s.fanin_probs.push(p);
                    }
                    cell_output_prob(&cell.function, &s.fanin_probs)
                }
            };
            s.overlay[g.0 as usize] = p;
            s.stamp[g.0 as usize] = r;
            visit(g, p);
        }
    }

    /// [`PowerEstimator::whatif_foreach_with`] with a throwaway scratch.
    /// Convenience for one-off queries and tests; hot paths should hold
    /// a [`WhatIfScratch`] and use the `_with` form.
    pub fn whatif_foreach(
        &self,
        nl: &Netlist,
        edits: &[WhatIfEdit],
        visit: impl FnMut(GateId, f64),
    ) {
        self.whatif_foreach_with(nl, edits, &mut WhatIfScratch::default(), visit);
    }

    /// Probabilities the gates in the transitive fanout of the edits would
    /// take if the given pins were rewired — without modifying the netlist.
    ///
    /// Returns the changed gates and their hypothetical probabilities
    /// (gates whose probability is unchanged may be omitted). Convenience
    /// wrapper over [`PowerEstimator::whatif_foreach`]; hot paths should
    /// use the latter to avoid the map allocation.
    #[must_use]
    pub fn whatif_probabilities(&self, nl: &Netlist, edits: &[WhatIfEdit]) -> HashMap<GateId, f64> {
        let mut changed: HashMap<GateId, f64> = HashMap::new();
        self.whatif_foreach(nl, edits, |g, p| {
            changed.insert(g, p);
        });
        changed
    }
}

/// Output probability of a cell under fanin independence:
/// `Σ_{m: f(m)=1} Π_i (m_i ? p_i : 1−p_i)`.
#[must_use]
pub fn cell_output_prob(function: &powder_logic::TruthTable, fanin_probs: &[f64]) -> f64 {
    debug_assert_eq!(function.vars(), fanin_probs.len());
    let mut total = 0.0;
    for m in function.minterms() {
        let mut term = 1.0;
        for (i, &p) in fanin_probs.iter().enumerate() {
            term *= if (m >> i) & 1 == 1 { p } else { 1.0 - p };
        }
        total += term;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use powder_library::lib2;
    use std::sync::Arc;

    fn fig2_circuit_a() -> (Netlist, Vec<GateId>) {
        // Paper Figure 2 circuit A: d = a XOR c, f = d AND b.
        let lib = Arc::new(lib2());
        let xor2 = lib.find_by_name("xor2").unwrap();
        let and2 = lib.find_by_name("and2").unwrap();
        let mut nl = Netlist::new("fig2a", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_cell("d", xor2, &[a, c]);
        let f = nl.add_cell("f", and2, &[d, b]);
        let po = nl.add_output("fo", f);
        (nl, vec![a, b, c, d, f, po])
    }

    #[test]
    fn probabilities_propagate() {
        let (nl, ids) = fig2_circuit_a();
        let est = PowerEstimator::new(&nl, &PowerConfig::default());
        assert!((est.probability(ids[3]) - 0.5).abs() < 1e-12); // xor
        assert!((est.probability(ids[4]) - 0.25).abs() < 1e-12); // and
        assert!((est.probability(ids[5]) - 0.25).abs() < 1e-12); // po follows
        assert!((est.transition(ids[3]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn biased_input_probabilities() {
        let (nl, ids) = fig2_circuit_a();
        let cfg = PowerConfig {
            output_load: 1.0,
            input_probs: vec![0.9, 0.5, 0.9],
        };
        let est = PowerEstimator::new(&nl, &cfg);
        // p(xor) = p(a)(1-p(c)) + (1-p(a))p(c) = .09 + .09 = .18
        assert!((est.probability(ids[3]) - 0.18).abs() < 1e-12);
    }

    #[test]
    fn circuit_power_counts_loads() {
        let (nl, _ids) = fig2_circuit_a();
        let est = PowerEstimator::new(&nl, &PowerConfig::default());
        // C(a)=C(c)= xor pin = 2; C(b) = and pin = 1; C(d) = and pin = 1;
        // C(f) = PO load = 1.
        // E(a)=E(b)=E(c)=0.5, E(d)=0.5, E(f)=2*.25*.75=.375
        let expect = 2.0 * 0.5 + 1.0 * 0.5 + 2.0 * 0.5 + 1.0 * 0.5 + 1.0 * 0.375;
        assert!(
            (est.circuit_power(&nl) - expect).abs() < 1e-12,
            "{} vs {expect}",
            est.circuit_power(&nl)
        );
    }

    /// The paper's Figure 2 numbers: circuit A's ΣC·E = 1.555 with the
    /// stated loads (AND pin 1, XOR pin 2) *excluding* primary-input stems
    /// and output load. We reproduce the 1.555 by summing the same signals
    /// the paper sums: d and f... Actually the paper's sum includes input
    /// stems a,b,c; with E=0.5 each and C(a)=C(c)=2, C(b)=1 that alone is
    /// 2.5. The 1.555 figure arises with input probabilities (0.5, 0.5,
    /// 0.1): see `paper_figure2_example` in the `powder` crate for the full
    /// derivation; here we check internal consistency instead.
    #[test]
    fn whatif_matches_committed_edit() {
        let (mut nl, ids) = fig2_circuit_a();
        let est = PowerEstimator::new(&nl, &PowerConfig::default());
        // What if f's pin0 read a instead of d?
        let what = est.whatif_probabilities(
            &nl,
            &[WhatIfEdit {
                sink: ids[4],
                pin: 0,
                source: WhatIfSource::Gate(ids[0]),
            }],
        );
        // Commit and compare.
        nl.replace_fanin(ids[4], 0, ids[0]);
        let est2 = PowerEstimator::new(&nl, &PowerConfig::default());
        for (&g, &p) in &what {
            assert!(
                (est2.probability(g) - p).abs() < 1e-12,
                "gate {g}: whatif {p} vs committed {}",
                est2.probability(g)
            );
        }
        assert!(what.contains_key(&ids[4]) && what.contains_key(&ids[5]));
    }

    #[test]
    fn whatif_with_virtual_probability() {
        let (nl, ids) = fig2_circuit_a();
        let est = PowerEstimator::new(&nl, &PowerConfig::default());
        let what = est.whatif_probabilities(
            &nl,
            &[WhatIfEdit {
                sink: ids[4],
                pin: 0,
                source: WhatIfSource::Prob(1.0),
            }],
        );
        // f = 1 AND b = b -> p = 0.5
        assert!((what[&ids[4]] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn update_cone_after_edit() {
        let (mut nl, ids) = fig2_circuit_a();
        let mut est = PowerEstimator::new(&nl, &PowerConfig::default());
        nl.replace_fanin(ids[4], 0, ids[0]);
        // cone: f, po
        est.update_cone(&nl, &[ids[4], ids[5]]);
        let fresh = PowerEstimator::new(&nl, &PowerConfig::default());
        for id in nl.iter_live() {
            assert!((est.probability(id) - fresh.probability(id)).abs() < 1e-12);
        }
    }

    #[test]
    fn running_total_matches_scan() {
        let (nl, _ids) = fig2_circuit_a();
        let est = PowerEstimator::new(&nl, &PowerConfig::default());
        assert!((est.total_power() - est.circuit_power(&nl)).abs() < 1e-12);
    }

    #[test]
    fn running_total_tracks_edits_and_retirement() {
        let (mut nl, ids) = fig2_circuit_a();
        let mut est = PowerEstimator::new(&nl, &PowerConfig::default());
        nl.drain_dirty();
        // Rewire f's pin0 from d to a; d becomes dangling and is swept.
        nl.replace_fanin(ids[4], 0, ids[0]);
        nl.sweep_from(ids[3]);
        let region = nl.drain_dirty();
        est.retire_gates(region.removed());
        let cone = nl.dirty_cone(&region);
        est.update_cone(&nl, &cone);
        assert!(
            (est.total_power() - est.circuit_power(&nl)).abs() < 1e-12,
            "running {} vs scan {}",
            est.total_power(),
            est.circuit_power(&nl)
        );
        let fresh = PowerEstimator::new(&nl, &PowerConfig::default());
        for id in nl.iter_live() {
            assert!((est.probability(id) - fresh.probability(id)).abs() < 1e-12);
        }
    }

    #[test]
    fn whatif_foreach_is_repeatable() {
        let (nl, ids) = fig2_circuit_a();
        let est = PowerEstimator::new(&nl, &PowerConfig::default());
        let edits = [WhatIfEdit {
            sink: ids[4],
            pin: 0,
            source: WhatIfSource::Gate(ids[0]),
        }];
        let mut first = Vec::new();
        est.whatif_foreach(&nl, &edits, |g, p| first.push((g, p)));
        // A second query reuses the scratch and must see no residue.
        let mut second = Vec::new();
        est.whatif_foreach(&nl, &edits, |g, p| second.push((g, p)));
        assert_eq!(first, second);
        assert!(first.iter().any(|&(g, _)| g == ids[4]));
        assert!(first.iter().any(|&(g, _)| g == ids[5]));
    }

    /// The parallel evaluation engine shares one immutable estimator
    /// across workers; this must stay a compile-time guarantee.
    #[test]
    fn estimator_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PowerEstimator>();
        assert_send_sync::<PowerConfig>();
    }

    #[test]
    fn monte_carlo_cross_check() {
        use powder_sim::{ones_fraction, simulate, CellCovers, Patterns};
        // A deeper circuit with reconvergence-free structure so the
        // independence assumption is exact: a balanced AND tree.
        let lib = Arc::new(lib2());
        let and2 = lib.find_by_name("and2").unwrap();
        let mut nl = Netlist::new("tree", lib);
        let pis: Vec<GateId> = (0..8).map(|i| nl.add_input(format!("x{i}"))).collect();
        let l1: Vec<GateId> = (0..4)
            .map(|i| nl.add_cell(format!("a{i}"), and2, &[pis[2 * i], pis[2 * i + 1]]))
            .collect();
        let l2: Vec<GateId> = (0..2)
            .map(|i| nl.add_cell(format!("b{i}"), and2, &[l1[2 * i], l1[2 * i + 1]]))
            .collect();
        let root = nl.add_cell("r", and2, &[l2[0], l2[1]]);
        nl.add_output("f", root);

        let est = PowerEstimator::new(&nl, &PowerConfig::default());
        let covers = CellCovers::new(nl.library());
        let pats = Patterns::random(8, 256, 17);
        let vals = simulate(&nl, &covers, &pats);
        let mc = ones_fraction(&nl, &vals);
        for id in nl.iter_live() {
            let diff = (est.probability(id) - mc[id.0 as usize]).abs();
            assert!(diff < 0.02, "gate {id}: analytic vs MC diff {diff}");
        }
    }
}
