//! Scripted pass sequences with optional fixpoint iteration.

use crate::checkpoint::{ResumePoint, RunCheckpoint};
use crate::egraph::EgraphPass;
use crate::passes::{PowderPass, RedundancyPass, ResizePass, SweepPass};
use crate::session::AnalysisSession;
use crate::transform::{PassBudget, PassReport, Transform};
use powder::{OptimizeConfig, RoundHook};
use powder_engine::{EngineStats, SessionStats};
use powder_obs as obs;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A destination for [`RunCheckpoint`]s the pipeline emits at committed
/// boundaries (the serving layer points this at a state directory).
pub type CheckpointSink = Arc<dyn Fn(RunCheckpoint) + Send + Sync>;

/// An ordered sequence of passes run against one shared
/// [`AnalysisSession`].
pub struct Pipeline {
    passes: Vec<Box<dyn Transform>>,
    /// Budget handed to every pass.
    pub budget: PassBudget,
    /// How many times to repeat the whole sequence (the driver stops
    /// early once an iteration commits no edits).
    pub fixpoint: usize,
    /// Optional wall-clock deadline: no further pass starts once it has
    /// passed, and the report flags the early stop. (Passes that honour
    /// a deadline internally — POWDER via `OptimizeConfig::deadline` —
    /// also stop mid-pass; the pipeline check bounds the rest.)
    pub deadline: Option<Instant>,
    /// Cooperative stop flag (SIGINT, daemon drain, job cancellation):
    /// checked before each pass and threaded into every pass's budget
    /// so POWDER stops between rounds. The report flags the interrupt
    /// and describes the best-so-far state.
    pub stop: Option<Arc<AtomicBool>>,
    /// Checkpoint destination. When set, the pipeline emits a
    /// [`RunCheckpoint`] after every completed POWDER round and after
    /// every completed pass.
    pub checkpoint_sink: Option<CheckpointSink>,
    /// Where to resume an interrupted run (from
    /// [`RunCheckpoint::position`]). The session handed to
    /// [`Pipeline::run`] must hold the checkpointed netlist and
    /// patterns (see [`RunCheckpoint::restore_session`]); completed
    /// iterations and passes are skipped, and an in-progress POWDER
    /// pass re-runs only its remaining rounds.
    pub resume: Option<ResumePoint>,
}

impl Pipeline {
    /// A pipeline over the given passes, run once with default budget.
    #[must_use]
    pub fn new(passes: Vec<Box<dyn Transform>>) -> Self {
        Pipeline {
            passes,
            budget: PassBudget::default(),
            fixpoint: 1,
            deadline: None,
            stop: None,
            checkpoint_sink: None,
            resume: None,
        }
    }

    /// Replaces the per-pass budget.
    #[must_use]
    pub fn with_budget(mut self, budget: PassBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Repeats the sequence up to `n` times (at least once), stopping
    /// early at a fixpoint.
    #[must_use]
    pub fn with_fixpoint(mut self, n: usize) -> Self {
        self.fixpoint = n.max(1);
        self
    }

    /// Sets the wall-clock deadline after which no further pass starts.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Installs the cooperative stop flag.
    #[must_use]
    pub fn with_stop(mut self, stop: Option<Arc<AtomicBool>>) -> Self {
        self.stop = stop;
        self
    }

    /// Installs the checkpoint sink.
    #[must_use]
    pub fn with_checkpoint_sink(mut self, sink: Option<CheckpointSink>) -> Self {
        self.checkpoint_sink = sink;
        self
    }

    /// Resumes from the given position instead of starting fresh.
    #[must_use]
    pub fn with_resume(mut self, resume: Option<ResumePoint>) -> Self {
        self.resume = resume;
        self
    }

    /// Names of the scheduled passes, in order.
    pub fn pass_names(&self) -> Vec<&str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every scheduled pass (repeating per `fixpoint`) against the
    /// session and reports the accumulated effect.
    ///
    /// With a [`CheckpointSink`] installed, a [`RunCheckpoint`] is
    /// emitted at every committed boundary; with a [`ResumePoint`], the
    /// run continues an interrupted one from exactly that boundary (the
    /// session must hold the checkpointed netlist and patterns). A
    /// resumed run is bit-identical to the uninterrupted one at any
    /// `jobs` setting.
    pub fn run(&mut self, sess: &mut AnalysisSession) -> PipelineReport {
        let t0 = Instant::now();
        let _pipeline_span = obs::span!(obs::names::span::PIPELINE);
        let stats_before = sess.stats();
        let initial_power = sess.power();
        let initial_area = sess.netlist().area();
        let initial_delay = sess.delay();
        let mut passes = Vec::new();
        let mut engine = EngineStats::default();
        let mut iterations = 0usize;
        let mut deadline_hit = false;
        let mut interrupted = false;
        let past_deadline = |d: Option<Instant>| d.is_some_and(|d| Instant::now() >= d);
        let stop_set =
            |s: &Option<Arc<AtomicBool>>| s.as_ref().is_some_and(|s| s.load(Ordering::Relaxed));
        let resume = self.resume.unwrap_or_default();
        'iterations: for iter_idx in resume.iteration..self.fixpoint {
            iterations += 1;
            obs::counter!(obs::names::PIPELINE_ITERATIONS).inc();
            // A resumed run re-enters its first iteration mid-flight:
            // completed passes are skipped and their edit count seeds
            // the fixpoint termination test.
            let first_iter = iter_idx == resume.iteration;
            let skip = if first_iter { resume.passes_done } else { 0 };
            let mut iteration_edits = if first_iter {
                resume.iteration_edits
            } else {
                0
            };
            for (pass_idx, pass) in self.passes.iter_mut().enumerate().skip(skip) {
                if past_deadline(self.deadline) {
                    deadline_hit = true;
                    break 'iterations;
                }
                if stop_set(&self.stop) {
                    interrupted = true;
                    break 'iterations;
                }
                let mut budget = self.budget.clone();
                budget.stop = self.stop.clone();
                // The first resumed pass is the one the checkpoint
                // interrupted mid-POWDER: run only its remaining rounds
                // against the required time it originally resolved, and
                // count its pre-interrupt commits as this iteration's.
                let resumed_here = first_iter && pass_idx == skip && resume.mid_powder();
                let (rounds_off, commits_off) = if resumed_here {
                    budget.rounds_offset = resume.powder_rounds_done;
                    budget.required_time = resume.required_time;
                    (resume.powder_rounds_done, resume.powder_commits)
                } else {
                    (0, 0)
                };
                if let Some(sink) = &self.checkpoint_sink {
                    if pass.name() == "powder" {
                        let sink = sink.clone();
                        let position = ResumePoint {
                            iteration: iter_idx,
                            passes_done: pass_idx,
                            iteration_edits,
                            powder_rounds_done: 0,
                            powder_commits: 0,
                            required_time: None,
                        };
                        budget.round_hook = Some(RoundHook::new(move |snap| {
                            sink(RunCheckpoint {
                                position: ResumePoint {
                                    powder_rounds_done: rounds_off + snap.rounds_done,
                                    powder_commits: commits_off + snap.commits,
                                    required_time: snap.required_time,
                                    ..position
                                },
                                netlist: powder_netlist::write_snapshot(snap.nl),
                                pattern_bits: (0..snap.patterns.inputs())
                                    .map(|i| snap.patterns.input_bits(i).to_vec())
                                    .collect(),
                                pattern_tail: snap.patterns.tail_used(),
                            });
                        }));
                    }
                }
                let report = {
                    let _span =
                        obs::span!(format!("{}{}", obs::names::span::PASS_PREFIX, pass.name()));
                    obs::counter!(obs::names::PIPELINE_PASSES_RUN).inc();
                    pass.run(sess, &budget)
                };
                iteration_edits += report.edits + commits_off;
                obs::counter!(obs::names::PIPELINE_EDITS).add(report.edits as u64);
                let mut pass_stopped = false;
                let mut pass_deadline = false;
                if let Some(opt) = &report.optimize {
                    engine.merge(&opt.engine);
                    pass_stopped = opt.interrupted;
                    pass_deadline = opt.deadline_hit;
                }
                passes.push(report);
                if pass_stopped {
                    // Stopped between rounds: the state equals the last
                    // round checkpoint, so no boundary checkpoint (the
                    // pass did not complete).
                    interrupted = true;
                    break 'iterations;
                }
                if pass_deadline {
                    deadline_hit = true;
                    break 'iterations;
                }
                if let Some(sink) = &self.checkpoint_sink {
                    sess.refresh();
                    sink(RunCheckpoint {
                        position: ResumePoint {
                            iteration: iter_idx,
                            passes_done: pass_idx + 1,
                            iteration_edits,
                            powder_rounds_done: 0,
                            powder_commits: 0,
                            required_time: None,
                        },
                        netlist: powder_netlist::write_snapshot(sess.netlist()),
                        pattern_bits: (0..sess.patterns().inputs())
                            .map(|i| sess.patterns().input_bits(i).to_vec())
                            .collect(),
                        pattern_tail: sess.patterns().tail_used(),
                    });
                }
            }
            if iteration_edits == 0 {
                break;
            }
        }
        let final_power = sess.power();
        let final_area = sess.netlist().area();
        let final_delay = sess.delay();
        PipelineReport {
            passes,
            iterations,
            initial_power,
            final_power,
            initial_area,
            final_area,
            initial_delay,
            final_delay,
            seconds: t0.elapsed().as_secs_f64(),
            session: sess.stats().delta(&stats_before),
            engine,
            deadline_hit,
            interrupted,
        }
    }
}

/// The accumulated result of a [`Pipeline::run`].
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// One report per executed pass, in execution order (a fixpoint
    /// iteration contributes one entry per scheduled pass).
    pub passes: Vec<PassReport>,
    /// Fixpoint iterations actually executed.
    pub iterations: usize,
    /// `Σ C·E` before the first pass.
    pub initial_power: f64,
    /// `Σ C·E` after the last pass.
    pub final_power: f64,
    /// Gate area before.
    pub initial_area: f64,
    /// Gate area after.
    pub final_area: f64,
    /// Circuit delay before.
    pub initial_delay: f64,
    /// Circuit delay after.
    pub final_delay: f64,
    /// Wall-clock seconds for the whole pipeline.
    pub seconds: f64,
    /// Session refresh counters accumulated across every pass.
    pub session: SessionStats,
    /// Candidate-evaluation engine counters merged over every POWDER
    /// pass in the pipeline.
    pub engine: EngineStats,
    /// Whether the pipeline stopped early on its wall-clock deadline.
    pub deadline_hit: bool,
    /// Whether the pipeline stopped early on its cooperative stop flag
    /// (SIGINT, daemon drain, job cancellation). The report still
    /// describes the best-so-far state at a committed boundary.
    pub interrupted: bool,
}

impl PipelineReport {
    /// Total edits committed across all passes.
    #[must_use]
    pub fn total_edits(&self) -> usize {
        self.passes.iter().map(|p| p.edits).sum()
    }

    /// Power reduction as a percentage of the initial power.
    #[must_use]
    pub fn power_reduction_percent(&self) -> f64 {
        if self.initial_power <= 0.0 {
            0.0
        } else {
            100.0 * (self.initial_power - self.final_power) / self.initial_power
        }
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline: power {:.3} -> {:.3} ({:+.1}%), area {:.0} -> {:.0}, \
             delay {:.2} -> {:.2}, {} edits, {} iteration(s), {:.1}s",
            self.initial_power,
            self.final_power,
            -self.power_reduction_percent(),
            self.initial_area,
            self.final_area,
            self.initial_delay,
            self.final_delay,
            self.total_edits(),
            self.iterations,
            self.seconds,
        )?;
        for pass in &self.passes {
            writeln!(f, "  {pass}")?;
        }
        write!(
            f,
            "  session: resim {}i/{}f, power {}i/{}f, sta {}i/{}f, {} refreshes",
            self.session.incremental_resims,
            self.session.full_resims,
            self.session.incremental_power_updates,
            self.session.full_power_builds,
            self.session.incremental_sta_updates,
            self.session.full_sta_builds,
            self.session.refreshes,
        )?;
        if self.deadline_hit {
            write!(f, "\n  deadline hit: pipeline stopped early")?;
        }
        if self.interrupted {
            write!(f, "\n  interrupted: best-so-far result emitted")?;
        }
        Ok(())
    }
}

/// Pass names the pipeline language recognises, in canonical order.
pub const KNOWN_PASSES: &[&str] = &["sweep", "powder", "resize", "redundancy", "egraph"];

/// Checks a `--passes` spec without building anything: every name must
/// be one of [`KNOWN_PASSES`] and the list must be non-empty. Callers
/// (the CLI, the daemon's submit validation) use this to fail fast at
/// parse time.
///
/// # Errors
///
/// Returns a message naming the offending pass and listing the valid
/// ones.
pub fn validate_passes(spec: &str) -> Result<(), String> {
    let mut any = false;
    for name in spec.split(',') {
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        if !KNOWN_PASSES.contains(&name) {
            return Err(format!(
                "unknown pass '{name}' (expected {})",
                KNOWN_PASSES.join(", ")
            ));
        }
        any = true;
    }
    if !any {
        return Err("empty pass list".to_string());
    }
    Ok(())
}

/// Builds a pipeline from the comma-separated pass language used by
/// `powder optimize --passes`, with default egraph tuning. See
/// [`build_pipeline_with`].
pub fn build_pipeline(
    spec: &str,
    powder_config: &OptimizeConfig,
    resize_required: Option<f64>,
) -> Result<Pipeline, String> {
    build_pipeline_with(
        spec,
        powder_config,
        resize_required,
        &powder_egraph::EgraphConfig::default(),
    )
}

/// Builds a pipeline from the comma-separated pass language used by
/// `powder optimize --passes`.
///
/// Recognised passes: [`KNOWN_PASSES`]. A pass may appear any number of
/// times. `powder_config` parameterizes every `powder` pass (and
/// supplies the ATPG budget for the others); `resize_required` pins the
/// resize slack computation to an absolute required time (`None` = the
/// circuit delay when the pass starts); `egraph_config` parameterizes
/// every `egraph` pass.
pub fn build_pipeline_with(
    spec: &str,
    powder_config: &OptimizeConfig,
    resize_required: Option<f64>,
    egraph_config: &powder_egraph::EgraphConfig,
) -> Result<Pipeline, String> {
    validate_passes(spec)?;
    let mut passes: Vec<Box<dyn Transform>> = Vec::new();
    for name in spec.split(',') {
        let name = name.trim();
        match name {
            "sweep" => passes.push(Box::new(SweepPass)),
            "powder" => passes.push(Box::new(PowderPass::new(powder_config.clone()))),
            "resize" => passes.push(Box::new(ResizePass::new(resize_required))),
            "redundancy" => passes.push(Box::new(RedundancyPass)),
            "egraph" => passes.push(Box::new(EgraphPass::new(*egraph_config))),
            _ => {}
        }
    }
    let budget = PassBudget {
        backtrack_limit: powder_config.backtrack_limit,
        ..PassBudget::default()
    };
    Ok(Pipeline::new(passes).with_budget(budget))
}
