//! Scripted pass sequences with optional fixpoint iteration.

use crate::passes::{PowderPass, RedundancyPass, ResizePass, SweepPass};
use crate::session::AnalysisSession;
use crate::transform::{PassBudget, PassReport, Transform};
use powder::OptimizeConfig;
use powder_engine::{EngineStats, SessionStats};
use powder_obs as obs;
use std::fmt;
use std::time::Instant;

/// An ordered sequence of passes run against one shared
/// [`AnalysisSession`].
pub struct Pipeline {
    passes: Vec<Box<dyn Transform>>,
    /// Budget handed to every pass.
    pub budget: PassBudget,
    /// How many times to repeat the whole sequence (the driver stops
    /// early once an iteration commits no edits).
    pub fixpoint: usize,
    /// Optional wall-clock deadline: no further pass starts once it has
    /// passed, and the report flags the early stop. (Passes that honour
    /// a deadline internally — POWDER via `OptimizeConfig::deadline` —
    /// also stop mid-pass; the pipeline check bounds the rest.)
    pub deadline: Option<Instant>,
}

impl Pipeline {
    /// A pipeline over the given passes, run once with default budget.
    #[must_use]
    pub fn new(passes: Vec<Box<dyn Transform>>) -> Self {
        Pipeline {
            passes,
            budget: PassBudget::default(),
            fixpoint: 1,
            deadline: None,
        }
    }

    /// Replaces the per-pass budget.
    #[must_use]
    pub fn with_budget(mut self, budget: PassBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Repeats the sequence up to `n` times (at least once), stopping
    /// early at a fixpoint.
    #[must_use]
    pub fn with_fixpoint(mut self, n: usize) -> Self {
        self.fixpoint = n.max(1);
        self
    }

    /// Sets the wall-clock deadline after which no further pass starts.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Names of the scheduled passes, in order.
    pub fn pass_names(&self) -> Vec<&str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every scheduled pass (repeating per `fixpoint`) against the
    /// session and reports the accumulated effect.
    pub fn run(&mut self, sess: &mut AnalysisSession) -> PipelineReport {
        let t0 = Instant::now();
        let _pipeline_span = obs::span!(obs::names::span::PIPELINE);
        let stats_before = sess.stats();
        let initial_power = sess.power();
        let initial_area = sess.netlist().area();
        let initial_delay = sess.delay();
        let mut passes = Vec::new();
        let mut engine = EngineStats::default();
        let mut iterations = 0usize;
        let mut deadline_hit = false;
        let past_deadline = |d: Option<Instant>| d.is_some_and(|d| Instant::now() >= d);
        'iterations: for _ in 0..self.fixpoint {
            iterations += 1;
            obs::counter!(obs::names::PIPELINE_ITERATIONS).inc();
            let mut iteration_edits = 0usize;
            for pass in &mut self.passes {
                if past_deadline(self.deadline) {
                    deadline_hit = true;
                    break 'iterations;
                }
                let report = {
                    let _span =
                        obs::span!(format!("{}{}", obs::names::span::PASS_PREFIX, pass.name()));
                    obs::counter!(obs::names::PIPELINE_PASSES_RUN).inc();
                    pass.run(sess, &self.budget)
                };
                iteration_edits += report.edits;
                obs::counter!(obs::names::PIPELINE_EDITS).add(report.edits as u64);
                if let Some(opt) = &report.optimize {
                    engine.merge(&opt.engine);
                }
                passes.push(report);
            }
            if iteration_edits == 0 {
                break;
            }
        }
        let final_power = sess.power();
        let final_area = sess.netlist().area();
        let final_delay = sess.delay();
        PipelineReport {
            passes,
            iterations,
            initial_power,
            final_power,
            initial_area,
            final_area,
            initial_delay,
            final_delay,
            seconds: t0.elapsed().as_secs_f64(),
            session: sess.stats().delta(&stats_before),
            engine,
            deadline_hit,
        }
    }
}

/// The accumulated result of a [`Pipeline::run`].
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// One report per executed pass, in execution order (a fixpoint
    /// iteration contributes one entry per scheduled pass).
    pub passes: Vec<PassReport>,
    /// Fixpoint iterations actually executed.
    pub iterations: usize,
    /// `Σ C·E` before the first pass.
    pub initial_power: f64,
    /// `Σ C·E` after the last pass.
    pub final_power: f64,
    /// Gate area before.
    pub initial_area: f64,
    /// Gate area after.
    pub final_area: f64,
    /// Circuit delay before.
    pub initial_delay: f64,
    /// Circuit delay after.
    pub final_delay: f64,
    /// Wall-clock seconds for the whole pipeline.
    pub seconds: f64,
    /// Session refresh counters accumulated across every pass.
    pub session: SessionStats,
    /// Candidate-evaluation engine counters merged over every POWDER
    /// pass in the pipeline.
    pub engine: EngineStats,
    /// Whether the pipeline stopped early on its wall-clock deadline.
    pub deadline_hit: bool,
}

impl PipelineReport {
    /// Total edits committed across all passes.
    #[must_use]
    pub fn total_edits(&self) -> usize {
        self.passes.iter().map(|p| p.edits).sum()
    }

    /// Power reduction as a percentage of the initial power.
    #[must_use]
    pub fn power_reduction_percent(&self) -> f64 {
        if self.initial_power <= 0.0 {
            0.0
        } else {
            100.0 * (self.initial_power - self.final_power) / self.initial_power
        }
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline: power {:.3} -> {:.3} ({:+.1}%), area {:.0} -> {:.0}, \
             delay {:.2} -> {:.2}, {} edits, {} iteration(s), {:.1}s",
            self.initial_power,
            self.final_power,
            -self.power_reduction_percent(),
            self.initial_area,
            self.final_area,
            self.initial_delay,
            self.final_delay,
            self.total_edits(),
            self.iterations,
            self.seconds,
        )?;
        for pass in &self.passes {
            writeln!(f, "  {pass}")?;
        }
        write!(
            f,
            "  session: resim {}i/{}f, power {}i/{}f, sta {}i/{}f, {} refreshes",
            self.session.incremental_resims,
            self.session.full_resims,
            self.session.incremental_power_updates,
            self.session.full_power_builds,
            self.session.incremental_sta_updates,
            self.session.full_sta_builds,
            self.session.refreshes,
        )?;
        if self.deadline_hit {
            write!(f, "\n  deadline hit: pipeline stopped early")?;
        }
        Ok(())
    }
}

/// Builds a pipeline from the comma-separated pass language used by
/// `powder optimize --passes`.
///
/// Recognised passes: `sweep`, `powder`, `resize`, `redundancy`. A
/// pass may appear any number of times. `powder_config` parameterizes
/// every `powder` pass (and supplies the ATPG budget for the others);
/// `resize_required` pins the resize slack computation to an absolute
/// required time (`None` = the circuit delay when the pass starts).
pub fn build_pipeline(
    spec: &str,
    powder_config: &OptimizeConfig,
    resize_required: Option<f64>,
) -> Result<Pipeline, String> {
    let mut passes: Vec<Box<dyn Transform>> = Vec::new();
    for name in spec.split(',') {
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        match name {
            "sweep" => passes.push(Box::new(SweepPass)),
            "powder" => passes.push(Box::new(PowderPass::new(powder_config.clone()))),
            "resize" => passes.push(Box::new(ResizePass::new(resize_required))),
            "redundancy" => passes.push(Box::new(RedundancyPass)),
            other => {
                return Err(format!(
                    "unknown pass '{other}' (expected sweep, powder, resize, redundancy)"
                ))
            }
        }
    }
    if passes.is_empty() {
        return Err("empty pass list".to_string());
    }
    let budget = PassBudget {
        backtrack_limit: powder_config.backtrack_limit,
        ..PassBudget::default()
    };
    Ok(Pipeline::new(passes).with_budget(budget))
}
