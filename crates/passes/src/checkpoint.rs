//! Durable mid-run state: [`RunCheckpoint`] and its text format.
//!
//! A pipeline configured with a checkpoint sink emits one
//! [`RunCheckpoint`] at every committed boundary — after each completed
//! POWDER round (via [`powder::RoundHook`]) and after each completed
//! pass. The checkpoint carries everything a fresh process needs to
//! continue the run and land on the *bit-identical* final netlist an
//! uninterrupted run would have produced:
//!
//! * the exact arena snapshot of the netlist (tombstones, fanout order,
//!   name map and journal generation included — see
//!   [`powder_netlist::write_snapshot`]),
//! * the full simulation pattern set, because ATPG counterexamples
//!   learned mid-run extend it and later decisions read those bits,
//! * the resolved absolute required time, because a
//!   [`powder::DelayLimit::Factor`] re-resolved against the mid-run
//!   netlist would move the constraint,
//! * the pipeline position ([`ResumePoint`]): fixpoint iteration, passes
//!   completed inside it, edits committed so far in the iteration (the
//!   fixpoint termination test needs them), and — when the checkpoint
//!   was taken inside a POWDER pass — rounds and commits already done.
//!
//! Deliberately *not* persisted: retained simulation values (resumed as
//! `None`; the full resimulation is content-identical to the retained
//! buffer), the fault-injection quarantine set, and the parallel
//! engine's cross-round gain/proof memos (perf-only caches whose
//! recomputation is bit-identical).

use crate::session::{AnalysisSession, SessionConfig};
use powder_library::Library;
use powder_netlist::Netlist;
use powder_sim::Patterns;
use std::sync::Arc;

/// Magic first line of the checkpoint text format.
pub const CHECKPOINT_MAGIC: &str = "powder-checkpoint v1";

/// Where the pipeline stood when a checkpoint was taken. All positions
/// refer to *completed* work; resume re-enters right after it.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResumePoint {
    /// Fixpoint iteration in progress (0-based).
    pub iteration: usize,
    /// Passes completed within that iteration.
    pub passes_done: usize,
    /// Edits committed by those completed passes (seed for the fixpoint
    /// termination test).
    pub iteration_edits: usize,
    /// Rounds completed inside the in-progress POWDER pass; `0` means
    /// the checkpoint sits at a pass boundary.
    pub powder_rounds_done: usize,
    /// Substitutions committed by the in-progress POWDER pass.
    pub powder_commits: usize,
    /// Absolute required time resolved by the in-progress POWDER pass
    /// (`None` at pass boundaries or when the run is unconstrained).
    /// The resumed pass pins its delay limit to this value.
    pub required_time: Option<f64>,
}

impl ResumePoint {
    /// Whether this point sits inside a POWDER pass (as opposed to a
    /// pass boundary).
    #[must_use]
    pub fn mid_powder(&self) -> bool {
        self.powder_rounds_done > 0
    }
}

/// A complete, restartable snapshot of a pipeline run at a committed
/// boundary. See the module docs for what is and is not persisted.
#[derive(Clone, Debug)]
pub struct RunCheckpoint {
    /// Pipeline position (including the resolved required time).
    pub position: ResumePoint,
    /// Exact arena snapshot text of the netlist
    /// ([`powder_netlist::write_snapshot`]).
    pub netlist: String,
    /// Packed simulation patterns, one row of words per circuit input.
    pub pattern_bits: Vec<Vec<u64>>,
    /// How many bits of the trailing word are in use (see
    /// [`Patterns::tail_used`]).
    pub pattern_tail: usize,
}

impl RunCheckpoint {
    /// Serializes to the line-oriented `powder-checkpoint v1` text
    /// format. Floats are stored as bit patterns, so
    /// [`RunCheckpoint::from_text`] round-trips exactly.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let p = &self.position;
        let _ = writeln!(out, "{CHECKPOINT_MAGIC}");
        let _ = writeln!(out, "iteration {}", p.iteration);
        let _ = writeln!(out, "passes_done {}", p.passes_done);
        let _ = writeln!(out, "iteration_edits {}", p.iteration_edits);
        let _ = writeln!(out, "powder_rounds_done {}", p.powder_rounds_done);
        let _ = writeln!(out, "powder_commits {}", p.powder_commits);
        match p.required_time {
            Some(t) => {
                let _ = writeln!(out, "required_time {:016x}", t.to_bits());
            }
            None => {
                let _ = writeln!(out, "required_time none");
            }
        }
        let words = self.pattern_bits.first().map_or(0, Vec::len);
        let _ = writeln!(
            out,
            "patterns {} {} {}",
            self.pattern_bits.len(),
            words,
            self.pattern_tail
        );
        for row in &self.pattern_bits {
            debug_assert_eq!(row.len(), words, "ragged pattern rows");
            let mut line = String::with_capacity(words * 17);
            for (i, w) in row.iter().enumerate() {
                if i > 0 {
                    line.push(' ');
                }
                let _ = write!(line, "{w:016x}");
            }
            out.push_str(&line);
            out.push('\n');
        }
        // The netlist section is last and verbatim: everything after
        // this marker line is the arena snapshot, no escaping needed.
        let _ = writeln!(out, "netlist");
        out.push_str(&self.netlist);
        out
    }

    /// Parses the `powder-checkpoint v1` text format.
    pub fn from_text(src: &str) -> Result<Self, String> {
        let mut lines = src.lines();
        let magic = lines.next().unwrap_or("");
        if magic != CHECKPOINT_MAGIC {
            return Err(format!(
                "not a checkpoint: expected {CHECKPOINT_MAGIC:?}, got {magic:?}"
            ));
        }
        let mut field = |name: &str| -> Result<String, String> {
            let line = lines
                .next()
                .ok_or_else(|| format!("checkpoint truncated before {name}"))?;
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| format!("expected {name:?} line, got {line:?}"))
        };
        let usize_field = |name: &str, value: &str| -> Result<usize, String> {
            value
                .parse::<usize>()
                .map_err(|_| format!("bad {name} count {value:?}"))
        };
        let mut position = ResumePoint {
            iteration: usize_field("iteration", &field("iteration")?)?,
            passes_done: usize_field("passes_done", &field("passes_done")?)?,
            iteration_edits: usize_field("iteration_edits", &field("iteration_edits")?)?,
            powder_rounds_done: usize_field("powder_rounds_done", &field("powder_rounds_done")?)?,
            powder_commits: usize_field("powder_commits", &field("powder_commits")?)?,
            required_time: None,
        };
        let rt = field("required_time")?;
        position.required_time = if rt == "none" {
            None
        } else {
            let bits = u64::from_str_radix(&rt, 16)
                .map_err(|_| format!("bad required_time bits {rt:?}"))?;
            Some(f64::from_bits(bits))
        };
        let shape = field("patterns")?;
        let mut parts = shape.split_whitespace();
        let inputs = usize_field("patterns inputs", parts.next().unwrap_or(""))?;
        let words = usize_field("patterns words", parts.next().unwrap_or(""))?;
        let pattern_tail = usize_field("patterns tail", parts.next().unwrap_or(""))?;
        let mut pattern_bits = Vec::with_capacity(inputs);
        for i in 0..inputs {
            let line = lines
                .next()
                .ok_or_else(|| format!("checkpoint truncated in pattern row {i}"))?;
            let row = line
                .split_whitespace()
                .map(|tok| {
                    u64::from_str_radix(tok, 16)
                        .map_err(|_| format!("bad pattern word {tok:?} in row {i}"))
                })
                .collect::<Result<Vec<u64>, String>>()?;
            if row.len() != words {
                return Err(format!(
                    "pattern row {i} has {} words, expected {words}",
                    row.len()
                ));
            }
            pattern_bits.push(row);
        }
        match lines.next() {
            Some("netlist") => {}
            other => return Err(format!("expected \"netlist\" marker, got {other:?}")),
        }
        let mut netlist = String::new();
        for line in lines {
            netlist.push_str(line);
            netlist.push('\n');
        }
        if netlist.is_empty() {
            return Err("checkpoint has an empty netlist section".to_string());
        }
        Ok(RunCheckpoint {
            position,
            netlist,
            pattern_bits,
            pattern_tail,
        })
    }

    /// Rebuilds the pattern set exactly as it stood at the checkpoint
    /// (including the partially-filled tail word).
    #[must_use]
    pub fn patterns(&self) -> Patterns {
        Patterns::from_raw(self.pattern_bits.clone(), self.pattern_tail)
    }

    /// Restores the netlist from the embedded arena snapshot.
    pub fn restore_netlist(&self, library: Arc<Library>) -> Result<Netlist, String> {
        powder_netlist::read_snapshot(&self.netlist, library).map_err(|e| e.to_string())
    }

    /// Restores a full [`AnalysisSession`] — netlist plus the
    /// checkpointed pattern set — ready to hand to a resumed
    /// [`Pipeline::run`](crate::Pipeline::run).
    pub fn restore_session(
        &self,
        config: SessionConfig,
        library: Arc<Library>,
    ) -> Result<AnalysisSession, String> {
        let nl = self.restore_netlist(library)?;
        Ok(AnalysisSession::restore(nl, config, self.patterns()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunCheckpoint {
        RunCheckpoint {
            position: ResumePoint {
                iteration: 2,
                passes_done: 1,
                iteration_edits: 7,
                powder_rounds_done: 3,
                powder_commits: 5,
                required_time: Some(1.625e-9),
            },
            netlist: "powder-arena v1\nname t\ngeneration 4\nslots 0\ninputs\noutputs\n"
                .to_string(),
            pattern_bits: vec![vec![0xdead_beef, u64::MAX], vec![0, 1]],
            pattern_tail: 17,
        }
    }

    #[test]
    fn text_round_trip_is_exact() {
        let cp = sample();
        let restored = RunCheckpoint::from_text(&cp.to_text()).unwrap();
        assert_eq!(restored.position, cp.position);
        assert_eq!(
            restored.position.required_time.map(f64::to_bits),
            cp.position.required_time.map(f64::to_bits)
        );
        assert_eq!(restored.netlist, cp.netlist);
        assert_eq!(restored.pattern_bits, cp.pattern_bits);
        assert_eq!(restored.pattern_tail, cp.pattern_tail);
    }

    #[test]
    fn none_required_time_round_trips() {
        let mut cp = sample();
        cp.position.required_time = None;
        let restored = RunCheckpoint::from_text(&cp.to_text()).unwrap();
        assert_eq!(restored.position.required_time, None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(RunCheckpoint::from_text("").is_err());
        assert!(RunCheckpoint::from_text("powder-checkpoint v0\n").is_err());
        let truncated = sample().to_text();
        let cut = truncated.find("patterns").unwrap();
        assert!(RunCheckpoint::from_text(&truncated[..cut]).is_err());
    }
}
