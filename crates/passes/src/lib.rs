//! Pass-pipeline architecture over the POWDER optimizer stack.
//!
//! The paper's flow (power-driven permissible substitutions after
//! technology mapping) is one transformation among several that read
//! the same expensive analyses: logic-simulation signatures, the
//! switched-capacitance power estimator, and static timing. This crate
//! factors that observation into three pieces:
//!
//! | type | role |
//! |------|------|
//! | [`AnalysisSession`] | owns the netlist plus every analysis, kept consistent through the edit journal (lazy, cone-local repair) |
//! | [`Transform`] | a pass: reads analyses through the session, commits edits through it |
//! | [`Pipeline`] | runs a scripted pass sequence, optionally to a fixpoint, and accounts per-pass effects |
//!
//! Five passes ship with the crate — [`PowderPass`] (the paper's
//! Fig. 5 loop), [`SweepPass`] (constant propagation and duplicate
//! merging keyed on simulation signatures), [`ResizePass`]
//! (slack-constrained cell downsizing), [`RedundancyPass`]
//! (ATPG redundancy removal), and [`EgraphPass`] (equality-saturation
//! cone rewriting, DESIGN.md §9) — all sharing one invariant: between
//! passes, no analysis is ever rebuilt from scratch. The session's
//! [`SessionStats`](powder_engine::SessionStats) counters prove it.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use powder_library::lib2;
//! use powder_netlist::Netlist;
//! use powder::OptimizeConfig;
//! use powder_passes::{build_pipeline, AnalysisSession, SessionConfig};
//!
//! let lib = Arc::new(lib2());
//! let and2 = lib.find_by_name("and2").unwrap();
//! let or2 = lib.find_by_name("or2").unwrap();
//! let andn2 = lib.find_by_name("andn2").unwrap();
//! let mut nl = Netlist::new("demo", lib);
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let g1 = nl.add_cell("g1", and2, &[a, b]);
//! let g2 = nl.add_cell("g2", andn2, &[a, b]);
//! let g3 = nl.add_cell("g3", or2, &[g1, g2]); // g3 == a
//! nl.add_output("f", g3);
//!
//! let config = OptimizeConfig::default();
//! let mut sess = AnalysisSession::new(nl, SessionConfig::from_optimize(&config));
//! let mut pipeline = build_pipeline("sweep,powder,resize", &config, None).unwrap();
//! let report = pipeline.run(&mut sess);
//! assert!(report.final_power <= report.initial_power);
//! sess.into_netlist().validate().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod egraph;
mod passes;
mod pipeline;
mod session;
mod transform;

pub use checkpoint::{ResumePoint, RunCheckpoint, CHECKPOINT_MAGIC};
pub use egraph::EgraphPass;
pub use passes::{PowderPass, RedundancyPass, ResizePass, SweepPass};
pub use pipeline::{
    build_pipeline, build_pipeline_with, validate_passes, CheckpointSink, Pipeline, PipelineReport,
    KNOWN_PASSES,
};
pub use session::{AnalysisSession, SessionCheckpoint, SessionConfig};
pub use transform::{PassBudget, PassReport, Transform};
