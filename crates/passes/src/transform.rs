//! The pass interface: [`Transform`], its budget, and per-pass reports.

use crate::session::AnalysisSession;
use powder::{OptimizeReport, RoundHook};
use powder_engine::SessionStats;
use std::fmt;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

/// Resource limits and run-control hooks a pass must respect.
#[derive(Clone, Debug)]
pub struct PassBudget {
    /// ATPG backtrack limit per permissibility proof.
    pub backtrack_limit: usize,
    /// Maximum number of netlist edits the pass may commit.
    pub max_edits: usize,
    /// Cooperative stop flag: a pass that can stop at a committed
    /// boundary (POWDER stops between rounds) checks it and returns
    /// its best-so-far state.
    pub stop: Option<Arc<AtomicBool>>,
    /// Committed-round observer threaded into POWDER passes (the
    /// pipeline's checkpoint sink rides on it).
    pub round_hook: Option<RoundHook>,
    /// Rounds already completed by an interrupted POWDER pass: a
    /// resumed pass runs `max_rounds - rounds_offset` further rounds.
    /// Zero for a normal run.
    pub rounds_offset: usize,
    /// Pinned absolute required time for a resumed POWDER pass,
    /// overriding the config's delay limit (a `Factor` re-resolved
    /// against the mid-run netlist would move the constraint).
    pub required_time: Option<f64>,
}

impl Default for PassBudget {
    fn default() -> Self {
        PassBudget {
            backtrack_limit: 3_000,
            max_edits: usize::MAX,
            stop: None,
            round_hook: None,
            rounds_offset: 0,
            required_time: None,
        }
    }
}

/// What one pass did to the circuit, measured against the shared
/// session's analyses before and after.
#[derive(Clone, Debug)]
pub struct PassReport {
    /// Pass name (as accepted by the pipeline language).
    pub name: String,
    /// `Σ C·E` when the pass started.
    pub power_before: f64,
    /// `Σ C·E` when the pass finished.
    pub power_after: f64,
    /// Gate area before.
    pub area_before: f64,
    /// Gate area after.
    pub area_after: f64,
    /// Netlist edits the pass committed (substitutions, cell swaps, or
    /// gates removed).
    pub edits: usize,
    /// Wall-clock seconds spent in the pass.
    pub seconds: f64,
    /// Analysis refreshes this pass caused: the session counter delta
    /// over the pass. A well-behaved pass performs zero
    /// `full_resims`/`full_power_builds` after the session's initial
    /// materialization — everything rides the edit journal.
    pub session: SessionStats,
    /// The full optimizer report, for passes that wrap the POWDER loop.
    pub optimize: Option<OptimizeReport>,
    /// Equality-saturation statistics, for the `egraph` pass.
    pub egraph: Option<powder_egraph::EgraphReport>,
}

impl PassReport {
    /// Power saved by this pass (positive = reduced).
    #[must_use]
    pub fn power_saved(&self) -> f64 {
        self.power_before - self.power_after
    }
}

impl fmt::Display for PassReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} power {:.3} -> {:.3}, {} edits, {:.2}s \
             (resim {}i/{}f, power {}i/{}f, sta {}i/{}f)",
            self.name,
            self.power_before,
            self.power_after,
            self.edits,
            self.seconds,
            self.session.incremental_resims,
            self.session.full_resims,
            self.session.incremental_power_updates,
            self.session.full_power_builds,
            self.session.incremental_sta_updates,
            self.session.full_sta_builds,
        )
    }
}

/// A structural transformation that runs against the shared
/// [`AnalysisSession`].
///
/// Implementations read the netlist and its analyses through the
/// session's accessors and commit edits through its mutators (or
/// directly on [`AnalysisSession::netlist_mut`]); the session keeps
/// every analysis consistent across edits, so consecutive passes never
/// pay for a from-scratch rebuild of state the previous pass already
/// maintained.
pub trait Transform {
    /// Pipeline-language name of the pass.
    fn name(&self) -> &str;

    /// Runs the pass to completion (or until the budget is exhausted)
    /// and reports what changed.
    fn run(&mut self, sess: &mut AnalysisSession, budget: &PassBudget) -> PassReport;
}

/// Wraps a pass body with the standard before/after measurement:
/// power and area from the refreshed session on both sides, wall time,
/// and the session-stat delta attributable to the body.
pub(crate) fn instrumented(
    name: &str,
    sess: &mut AnalysisSession,
    body: impl FnOnce(&mut AnalysisSession) -> (usize, Option<OptimizeReport>),
) -> PassReport {
    let t0 = Instant::now();
    // Refresh (via `power()`) before snapshotting the counters so that
    // repairs owed to a previous pass's trailing edits are not billed
    // to this one.
    let power_before = sess.power();
    let area_before = sess.netlist().area();
    let stats_before = sess.stats();
    let (edits, optimize) = body(sess);
    let power_after = sess.power();
    let area_after = sess.netlist().area();
    PassReport {
        name: name.to_string(),
        power_before,
        power_after,
        area_before,
        area_after,
        edits,
        seconds: t0.elapsed().as_secs_f64(),
        session: sess.stats().delta(&stats_before),
        optimize,
        egraph: None,
    }
}
