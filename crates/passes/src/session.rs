//! The shared analysis context every pass runs against.

use powder::{optimize_with, OptimizeConfig, OptimizeReport, SharedAnalyses};
use powder_atpg::Substitution;
use powder_engine::SessionStats;
use powder_netlist::{ConeScratch, GateId, Netlist};
use powder_obs as obs;
use powder_power::{PowerConfig, PowerEstimator};
use powder_sim::{resimulate_cone, simulate, Patterns, SimValues};
use powder_timing::{TimingAnalysis, TimingConfig};

/// Configuration of an [`AnalysisSession`]: the power model plus the
/// simulation volume and seed shared by every pass. For bit-identity
/// with a standalone [`powder::optimize`] run, derive it from the same
/// [`OptimizeConfig`] via [`SessionConfig::from_optimize`].
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Power model (output load, input probabilities).
    pub power: PowerConfig,
    /// Random simulation volume: `sim_words × 64` patterns.
    pub sim_words: usize,
    /// Seed for the random pattern generator.
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig::from_optimize(&OptimizeConfig::default())
    }
}

impl SessionConfig {
    /// The session parameters a standalone [`powder::optimize`] run with
    /// `config` would use internally.
    #[must_use]
    pub fn from_optimize(config: &OptimizeConfig) -> Self {
        SessionConfig {
            power: config.power.clone(),
            sim_words: config.sim_words,
            seed: config.seed,
        }
    }
}

/// A transactional checkpoint over the session's netlist *and* its
/// maintained analyses, produced by [`AnalysisSession::checkpoint`].
///
/// The caller contract matches [`Netlist::checkpoint`]: between
/// checkpoint and rollback, edits may only mutate gates in `roots` and
/// create new gates. [`AnalysisSession::rollback`] then restores the
/// netlist bit-for-bit and repairs the power estimator, retained
/// simulation values, and timing view over the restored region.
pub struct SessionCheckpoint {
    cp: powder_netlist::Checkpoint,
    roots: Vec<GateId>,
    id_bound: usize,
}

/// Owns a netlist together with every analysis the passes consult —
/// simulation signatures, the power estimator, and timing — and keeps
/// them consistent through the netlist's edit journal: any edit made
/// via [`AnalysisSession::netlist_mut`] (or the mutating helpers) is
/// repaired lazily, over the dirty cone only, by the next analysis
/// access. Passes therefore never rebuild an analysis from scratch
/// between edits; [`AnalysisSession::stats`] counts exactly how often
/// each analysis was fully rebuilt versus incrementally refreshed.
pub struct AnalysisSession {
    nl: Netlist,
    config: SessionConfig,
    shared: SharedAnalyses,
    /// Cached fixed-required-time timing view; `None` until a pass asks
    /// for one, invalidated when the required time changes or POWDER
    /// (which drains the journal internally) runs.
    sta: Option<TimingAnalysis>,
    cone_scratch: ConeScratch,
    cone: Vec<GateId>,
    stats: SessionStats,
}

impl AnalysisSession {
    /// Takes ownership of `nl` and builds the initial analyses from its
    /// current state (one full power propagation; simulation values and
    /// timing stay lazy until a pass needs them).
    #[must_use]
    pub fn new(mut nl: Netlist, config: SessionConfig) -> Self {
        // The journal may hold construction records; the analyses below
        // are built from the current state, so tracking starts clean.
        nl.drain_dirty();
        obs::counter!(obs::names::ANALYSIS_POWER_FULL).inc();
        let shared = SharedAnalyses::new(&nl, &config.power, config.sim_words, config.seed);
        AnalysisSession {
            nl,
            config,
            shared,
            sta: None,
            cone_scratch: ConeScratch::new(),
            cone: Vec::new(),
            stats: SessionStats {
                full_power_builds: 1,
                ..SessionStats::default()
            },
        }
    }

    /// Rebuilds a session from checkpointed state: the restored netlist
    /// plus the pattern set as it stood mid-run (counterexamples
    /// learned before the checkpoint included). Simulation values are
    /// left unmaterialized — the first `signatures()` access runs one
    /// full simulation whose content is identical to the retained
    /// buffer the interrupted run carried, so every later decision
    /// reads the same bits.
    #[must_use]
    pub fn restore(nl: Netlist, config: SessionConfig, patterns: Patterns) -> Self {
        let mut sess = Self::new(nl, config);
        sess.shared.patterns = patterns;
        sess.shared.values = None;
        sess
    }

    /// Read access to the netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.nl
    }

    /// The session's simulation pattern set (grows as POWDER learns
    /// ATPG counterexamples; checkpoints must persist it).
    #[must_use]
    pub fn patterns(&self) -> &Patterns {
        &self.shared.patterns
    }

    /// Mutable access to the netlist. Edit freely — every mutator
    /// journals what it touches, and the next analysis access repairs
    /// the analyses over exactly that dirty region.
    pub fn netlist_mut(&mut self) -> &mut Netlist {
        &mut self.nl
    }

    /// Dissolves the session, returning the optimized netlist.
    #[must_use]
    pub fn into_netlist(self) -> Netlist {
        self.nl
    }

    /// The session configuration.
    #[must_use]
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Cumulative analysis-refresh counters since the session was built.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Drains the edit journal and repairs every materialized analysis
    /// over the dirty cone: power probabilities and the running total,
    /// retained simulation values, and the cached timing view. No-op
    /// when the journal is empty. All analysis accessors call this
    /// first, so passes rarely need to invoke it directly.
    pub fn refresh(&mut self) {
        if !self.nl.has_pending_edits() {
            return;
        }
        let _span = obs::span!(obs::names::span::SESSION_REFRESH);
        self.stats.refreshes += 1;
        obs::counter!(obs::names::ANALYSIS_REFRESHES).inc();
        let region = self.nl.drain_dirty();
        self.cone.clear();
        self.cone_scratch
            .cone_topo(&self.nl, region.touched().iter().copied(), &mut self.cone);
        obs::histogram!(
            obs::names::ANALYSIS_CONE_GATES,
            obs::names::CONE_GATES_BOUNDS
        )
        .observe(self.cone.len() as u64);
        self.shared.est.retire_gates(region.removed());
        self.shared.est.update_cone(&self.nl, &self.cone);
        self.stats.incremental_power_updates += 1;
        obs::counter!(obs::names::ANALYSIS_POWER_INCREMENTAL).inc();
        if let Some(values) = self.shared.values.as_mut() {
            resimulate_cone(&self.nl, &self.shared.covers, values, &self.cone);
            self.stats.incremental_resims += 1;
            obs::counter!(obs::names::ANALYSIS_SIM_INCREMENTAL).inc();
        }
        if let Some(sta) = self.sta.as_mut() {
            sta.update(&self.nl, &region);
            self.stats.incremental_sta_updates += 1;
            obs::counter!(obs::names::ANALYSIS_STA_INCREMENTAL).inc();
        }
    }

    /// The circuit's current switched capacitance `Σ C·E` (the metric
    /// POWDER minimises), read from the maintained estimator.
    pub fn power(&mut self) -> f64 {
        self.refresh();
        self.shared.est.circuit_power(&self.nl)
    }

    /// The current circuit delay, from a throwaway unconstrained STA
    /// (required time floating at the circuit delay).
    pub fn delay(&mut self) -> f64 {
        self.refresh();
        self.stats.full_sta_builds += 1;
        obs::counter!(obs::names::ANALYSIS_STA_FULL).inc();
        let _span = obs::span!(obs::names::span::SESSION_STA_BUILD);
        let probe = TimingConfig {
            output_load: self.config.power.output_load,
            required_time: None,
        };
        TimingAnalysis::new(&self.nl, &probe).circuit_delay()
    }

    /// The netlist together with its refreshed power estimator — the
    /// borrow most passes need for gain analysis.
    pub fn analyses(&mut self) -> (&Netlist, &PowerEstimator) {
        self.refresh();
        (&self.nl, &self.shared.est)
    }

    /// The netlist, estimator, and a timing analysis pinned to the given
    /// absolute required time. The timing view is cached: it is built in
    /// full only when the required time changes, and repaired
    /// incrementally over dirty regions otherwise.
    pub fn timed_analyses(
        &mut self,
        required_time: f64,
    ) -> (&Netlist, &PowerEstimator, &TimingAnalysis) {
        self.refresh();
        let rebuild = match &self.sta {
            Some(sta) => (sta.required_time() - required_time).abs() > 1e-12,
            None => true,
        };
        if rebuild {
            self.stats.full_sta_builds += 1;
            obs::counter!(obs::names::ANALYSIS_STA_FULL).inc();
            let _span = obs::span!(obs::names::span::SESSION_STA_BUILD);
            let cfg = TimingConfig {
                output_load: self.config.power.output_load,
                required_time: Some(required_time),
            };
            self.sta = Some(TimingAnalysis::new(&self.nl, &cfg));
        }
        (
            &self.nl,
            &self.shared.est,
            self.sta.as_ref().expect("built above"),
        )
    }

    /// The netlist with its simulation signatures under the session's
    /// pattern set, materializing them (one full simulation) on first
    /// use and refreshing them incrementally afterwards.
    pub fn signatures(&mut self) -> (&Netlist, &SimValues) {
        self.refresh();
        if self.shared.values.is_none() {
            self.stats.full_resims += 1;
            obs::counter!(obs::names::ANALYSIS_SIM_FULL).inc();
            let _span = obs::span!(obs::names::span::SESSION_SIMULATE);
            self.shared.values = Some(simulate(
                &self.nl,
                &self.shared.covers,
                &self.shared.patterns,
            ));
        }
        (
            &self.nl,
            self.shared.values.as_ref().expect("materialized above"),
        )
    }

    /// Applies a proven substitution and repairs the analyses over its
    /// dirty cone.
    pub fn apply(&mut self, sub: &Substitution) -> powder::apply::ApplyResult {
        let result = powder::apply::apply_substitution(&mut self.nl, sub);
        self.refresh();
        result
    }

    /// Exchanges the cell of `g` (same function, same pin order) and
    /// repairs the analyses over the dirty cone.
    pub fn swap_gate_cell(&mut self, g: GateId, cell: powder_library::CellId) {
        powder::resize::swap_cell(&mut self.nl, g, cell);
        self.refresh();
    }

    /// Sweeps `seed` and everything upstream that becomes dangling,
    /// repairing the analyses; returns the removed gates.
    pub fn sweep_dangling(&mut self, seed: GateId) -> Vec<GateId> {
        let removed = self.nl.sweep_from(seed);
        if !removed.is_empty() {
            self.refresh();
        }
        removed
    }

    /// Captures a transactional checkpoint covering `roots` (see
    /// [`Netlist::checkpoint`] for the write-set contract). The journal
    /// is drained first so the analyses and the checkpoint describe the
    /// same state.
    #[must_use]
    pub fn checkpoint(&mut self, roots: &[GateId]) -> SessionCheckpoint {
        self.refresh();
        SessionCheckpoint {
            cp: self.nl.checkpoint(roots),
            roots: roots.to_vec(),
            id_bound: self.nl.id_bound(),
        }
    }

    /// Rolls the netlist back to `scp` and repairs every materialized
    /// analysis over the restored region: gates created since the
    /// checkpoint are retired from the estimator, the restored cone is
    /// re-propagated and re-simulated, and the cached timing view is
    /// dropped (it cannot be repaired across a journal rewind).
    pub fn rollback(&mut self, scp: SessionCheckpoint) {
        // The netlist rollback rewinds the journal, so analyses must be
        // consistent with the pre-rollback state first.
        self.refresh();
        let created: Vec<GateId> = (scp.id_bound..self.nl.id_bound())
            .map(|i| GateId(i as u32))
            .collect();
        self.nl.rollback(scp.cp);
        self.shared.est.retire_gates(&created);
        self.cone.clear();
        let live_roots = scp.roots.iter().copied().filter(|&g| self.nl.is_live(g));
        self.cone_scratch
            .cone_topo(&self.nl, live_roots, &mut self.cone);
        self.shared.est.update_cone(&self.nl, &self.cone);
        self.stats.incremental_power_updates += 1;
        obs::counter!(obs::names::ANALYSIS_POWER_INCREMENTAL).inc();
        if let Some(values) = self.shared.values.as_mut() {
            resimulate_cone(&self.nl, &self.shared.covers, values, &self.cone);
            self.stats.incremental_resims += 1;
            obs::counter!(obs::names::ANALYSIS_SIM_INCREMENTAL).inc();
        }
        self.sta = None;
    }

    /// Runs the POWDER substitution loop against the session's shared
    /// analyses: the optimizer reuses the session's estimator, pattern
    /// set, and (when fresh) retained simulation values, and hands them
    /// back consistent with the edited netlist. On a session whose
    /// values were never materialized this is bit-identical to the
    /// standalone [`powder::optimize`] entry point.
    pub fn run_powder(&mut self, config: &OptimizeConfig) -> OptimizeReport {
        self.refresh();
        let report = optimize_with(&mut self.nl, config, &mut self.shared);
        // POWDER drains the journal internally after each commit, so a
        // cached timing view cannot be repaired across its edits.
        self.sta = None;
        // Struct-level bookkeeping only: the optimizer already fed the
        // metric registry live at each site, so publishing this merge
        // would double-count.
        self.stats.merge(&SessionStats {
            full_resims: report.incremental.full_resims,
            incremental_resims: report.incremental.incremental_resims,
            full_power_builds: report.incremental.full_power_rescans,
            incremental_power_updates: report.incremental.incremental_power_updates,
            full_sta_builds: report.incremental.full_sta_rebuilds,
            incremental_sta_updates: report.incremental.incremental_sta_updates,
            refreshes: report.applied.len(),
        });
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powder_library::lib2;
    use powder_sim::CellCovers;
    use std::sync::Arc;

    fn small_circuit() -> Netlist {
        let lib = Arc::new(lib2());
        let and2 = lib.find_by_name("and2").unwrap();
        let or2 = lib.find_by_name("or2").unwrap();
        let mut nl = Netlist::new("t", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g1 = nl.add_cell("g1", and2, &[a, b]);
        let g2 = nl.add_cell("g2", or2, &[g1, c]);
        nl.add_output("f", g2);
        nl
    }

    #[test]
    fn refresh_repairs_analyses_after_manual_edit() {
        let mut sess = AnalysisSession::new(small_circuit(), SessionConfig::default());
        let before = sess.power();
        let (_, values) = sess.signatures();
        assert!(values.words() > 0);

        // Rewire g2's second pin from c (probability 0.5) to g1
        // (probability 0.25), then compare every maintained analysis
        // against a from-scratch rebuild.
        let nl = sess.netlist_mut();
        let g2 = nl
            .iter_live()
            .find(|&g| nl.gate_name(g) == "g2")
            .expect("g2 exists");
        let g1 = nl
            .iter_live()
            .find(|&g| nl.gate_name(g) == "g1")
            .expect("g1 exists");
        nl.replace_fanin(g2, 1, g1);
        let after = sess.power();
        assert_ne!(before, after, "the rewiring changes Σ C·E");

        let fresh = PowerEstimator::new(sess.netlist(), &sess.config().power.clone());
        let (nl, est) = sess.analyses();
        for g in nl.iter_live() {
            assert!(
                (est.probability(g) - fresh.probability(g)).abs() < 1e-12,
                "probability of {} drifted",
                nl.gate_name(g)
            );
        }
        let covers = CellCovers::new(sess.netlist().library());
        let pats = powder_sim::Patterns::random(
            sess.netlist().inputs().len(),
            sess.config().sim_words,
            sess.config().seed,
        );
        let full = simulate(sess.netlist(), &covers, &pats);
        let (nl, values) = sess.signatures();
        for g in nl.iter_live() {
            assert_eq!(values.get(g), full.get(g), "retained values stale at {g}");
        }
        let stats = sess.stats();
        assert_eq!(stats.full_resims, 1, "one lazy materialization only");
        assert!(stats.incremental_resims >= 1);
        assert_eq!(stats.full_power_builds, 1, "initial build only");
    }

    #[test]
    fn rollback_restores_netlist_and_analyses() {
        let mut sess = AnalysisSession::new(small_circuit(), SessionConfig::default());
        let power_before = sess.power();
        let (_, values) = sess.signatures();
        assert!(values.words() > 0);
        let blif_before = powder_netlist::blif::write_blif(sess.netlist());

        let (g1, g2, c) = {
            let nl = sess.netlist();
            let find = |n: &str| nl.iter_live().find(|&g| nl.gate_name(g) == n).unwrap();
            (find("g1"), find("g2"), find("c"))
        };
        // Write set: g2's fanin is rewired (g2), g1 gains a branch (g1),
        // c loses one (c); the new gate needs no root entry.
        let scp = sess.checkpoint(&[g1, g2, c]);
        let and2 = sess.netlist().library().find_by_name("and2").unwrap();
        let extra = sess.netlist_mut().add_cell("extra", and2, &[g1, c]);
        sess.netlist_mut().replace_fanin(g2, 1, extra);
        assert_ne!(sess.power(), power_before);

        sess.rollback(scp);
        sess.netlist().validate().unwrap();
        assert_eq!(
            powder_netlist::blif::write_blif(sess.netlist()),
            blif_before
        );
        assert!(
            (sess.power() - power_before).abs() < 1e-12,
            "estimator repaired to the checkpointed state"
        );
        // Every maintained analysis must agree with a from-scratch one.
        let fresh = PowerEstimator::new(sess.netlist(), &sess.config().power.clone());
        let (nl, est) = sess.analyses();
        for g in nl.iter_live() {
            assert!(
                (est.probability(g) - fresh.probability(g)).abs() < 1e-12,
                "probability of {} drifted after rollback",
                nl.gate_name(g)
            );
        }
        let covers = CellCovers::new(sess.netlist().library());
        let pats = powder_sim::Patterns::random(
            sess.netlist().inputs().len(),
            sess.config().sim_words,
            sess.config().seed,
        );
        let full = simulate(sess.netlist(), &covers, &pats);
        let (nl, values) = sess.signatures();
        for g in nl.iter_live() {
            assert_eq!(
                values.get(g),
                full.get(g),
                "values stale at {g} after rollback"
            );
        }
    }

    #[test]
    fn timed_analyses_cache_by_required_time() {
        let mut sess = AnalysisSession::new(small_circuit(), SessionConfig::default());
        let d = sess.delay();
        let builds_before = sess.stats().full_sta_builds;
        sess.timed_analyses(d);
        sess.timed_analyses(d);
        assert_eq!(
            sess.stats().full_sta_builds,
            builds_before + 1,
            "second query with the same required time hits the cache"
        );
        sess.timed_analyses(d * 2.0);
        assert_eq!(sess.stats().full_sta_builds, builds_before + 2);
    }

    #[test]
    fn run_powder_matches_standalone_optimize() {
        let lib = Arc::new(lib2());
        let and2 = lib.find_by_name("and2").unwrap();
        let or2 = lib.find_by_name("or2").unwrap();
        let xor2 = lib.find_by_name("xor2").unwrap();
        let build = || {
            let mut nl = Netlist::new("redundant", lib.clone());
            let a = nl.add_input("a");
            let b = nl.add_input("b");
            let c = nl.add_input("c");
            let g1 = nl.add_cell("g1", and2, &[a, b]);
            let g2 = nl.add_cell("g2", and2, &[b, a]);
            let g3 = nl.add_cell("g3", or2, &[g1, g2]);
            let g4 = nl.add_cell("g4", xor2, &[g3, c]);
            nl.add_output("f", g4);
            nl
        };
        let cfg = OptimizeConfig {
            jobs: 1,
            ..OptimizeConfig::default()
        };
        let mut standalone_nl = build();
        let standalone = powder::optimize(&mut standalone_nl, &cfg);

        let mut sess = AnalysisSession::new(build(), SessionConfig::from_optimize(&cfg));
        let report = sess.run_powder(&cfg);
        let subs: Vec<_> = report.applied.iter().map(|s| s.substitution).collect();
        let subs_standalone: Vec<_> = standalone.applied.iter().map(|s| s.substitution).collect();
        assert_eq!(subs, subs_standalone, "decision sequences diverged");
        assert_eq!(report.final_power, standalone.final_power);
    }
}
