//! The `egraph` pass: equality-saturation rewriting above the
//! substitution loop.
//!
//! Where POWDER's passes make single-signal moves, this pass rewrites
//! whole cones: for each cell-rooted, fanout-free cone it saturates an
//! e-graph under logic and library-remap rules, extracts the cheapest
//! implementation by switched capacitance, and — when the model
//! predicts a gain — materializes the extraction next to the old cone
//! and substitutes it in through the standard machinery:
//!
//! 1. the new structure is simulated and its signature must match the
//!    old root's under every retained pattern (a free counterexample
//!    check before any proving starts);
//! 2. the substitution is proven permissible by the ATPG oracle
//!    (`check_substitution`, the same cone-local miter POWDER uses);
//! 3. the edit is journaled through the session, so incremental
//!    power/sim/STA repair applies unchanged;
//! 4. the measured `Σ C·E` must actually drop — a commit whose global
//!    power regresses (the cone model is exact locally but blind to
//!    reconvergence outside the cone) is rolled back bit-for-bit
//!    through a [`SessionCheckpoint`], PR-5 guard style, and the rule
//!    chain that produced the plan is quarantined for the rest of the
//!    pass.
//!
//! Determinism: candidate roots are scanned in ascending gate id, the
//! e-graph and extractor are deterministic by construction, and no
//! decision depends on `--jobs`.

use crate::session::AnalysisSession;
use crate::transform::{instrumented, PassBudget, PassReport, Transform};
use powder::Substitution;
use powder_atpg::{check_substitution, CheckOutcome};
use powder_egraph::{
    apply_plan, build_egraph, collect_cone, current_cost, extract, plan_const_needs,
    plan_root_is_existing, saturate, Cone, EgraphConfig, EgraphReport, Operand, Plan,
};
use powder_netlist::{GateId, GateKind};
use powder_obs as obs;
use std::collections::HashSet;

/// Power-improvement threshold for accepting a committed rewrite,
/// matching the monotonicity epsilon used by the other passes.
const POWER_EPS: f64 = 1e-12;

/// The equality-saturation rewriting pass.
#[derive(Clone, Debug, Default)]
pub struct EgraphPass {
    /// Saturation, cone, and gain bounds.
    pub config: EgraphConfig,
}

impl EgraphPass {
    /// An egraph pass with the given configuration.
    #[must_use]
    pub fn new(config: EgraphConfig) -> Self {
        EgraphPass { config }
    }
}

/// Why one candidate cone did not produce a committed rewrite.
enum Verdict {
    /// Committed and kept (modelled cost delta attached).
    Kept(f64),
    /// Nothing to do: no plan, no predicted gain, or root skipped.
    Rejected,
    /// Applied or staged, then undone; the rule chain is quarantined.
    RolledBack(Vec<u8>),
}

impl Transform for EgraphPass {
    fn name(&self) -> &str {
        "egraph"
    }

    fn run(&mut self, sess: &mut AnalysisSession, budget: &PassBudget) -> PassReport {
        let cfg = self.config;
        let mut er = EgraphReport::default();
        let mut report = instrumented("egraph", sess, |sess| {
            let mut edits = 0usize;
            // Roots whose extraction the guard refuted, and the rule
            // chains that produced those plans: neither is tried again.
            let mut quarantined_roots: HashSet<GateId> = HashSet::new();
            let mut quarantined_chains: HashSet<Vec<u8>> = HashSet::new();
            let roots: Vec<GateId> = sess
                .netlist()
                .iter_live()
                .filter(|&g| matches!(sess.netlist().kind(g), GateKind::Cell(_)))
                .collect();
            for root in roots {
                if edits >= budget.max_edits {
                    break;
                }
                if let Some(stop) = &budget.stop {
                    if stop.load(std::sync::atomic::Ordering::Relaxed) {
                        break;
                    }
                }
                if !sess.netlist().is_live(root) || quarantined_roots.contains(&root) {
                    continue;
                }
                let verdict = try_rewrite(sess, root, &cfg, budget, &quarantined_chains, &mut er);
                match verdict {
                    Verdict::Kept(delta) => {
                        edits += 1;
                        er.applied += 1;
                        er.cost_delta += delta;
                        obs::counter!(obs::names::EGRAPH_APPLIED).inc();
                    }
                    Verdict::Rejected => {
                        er.rejected += 1;
                        obs::counter!(obs::names::EGRAPH_REJECTED).inc();
                    }
                    Verdict::RolledBack(chain) => {
                        er.rollbacks += 1;
                        obs::counter!(obs::names::EGRAPH_ROLLBACKS).inc();
                        obs::counter!(obs::names::EGRAPH_QUARANTINED).inc();
                        quarantined_roots.insert(root);
                        quarantined_chains.insert(chain);
                    }
                }
            }
            (edits, None)
        });
        report.egraph = Some(er);
        report
    }
}

/// Runs the saturate→extract→prove→commit protocol on one root.
fn try_rewrite(
    sess: &mut AnalysisSession,
    root: GateId,
    cfg: &EgraphConfig,
    budget: &PassBudget,
    quarantined_chains: &HashSet<Vec<u8>>,
    er: &mut EgraphReport,
) -> Verdict {
    let _span = obs::span!(obs::names::span::EGRAPH_CONE);
    // Saturate the cone and extract the cheapest implementation.
    let (cone, plan, old_cost) = {
        let (nl, est) = sess.analyses();
        let Some(cone) = collect_cone(nl, root, &cfg.limits) else {
            return Verdict::Rejected;
        };
        let leaf_probs: Vec<f64> = cone.leaves.iter().map(|&l| est.probability(l)).collect();
        let mut cg = build_egraph(nl, &cone);
        let stats = saturate(&mut cg.eg, &cfg.saturation());
        er.cones += 1;
        er.iters += stats.iters;
        er.nodes += stats.nodes;
        er.saturated += usize::from(stats.saturated);
        obs::counter!(obs::names::EGRAPH_CONES).inc();
        obs::counter!(obs::names::EGRAPH_ITERS).add(stats.iters as u64);
        obs::counter!(obs::names::EGRAPH_NODES).add(stats.nodes as u64);
        obs::histogram!(
            obs::names::EGRAPH_CONE_NODES,
            obs::names::EGRAPH_CONE_NODES_BOUNDS
        )
        .observe(stats.nodes as u64);
        let old_cost = current_cost(nl, &cone, &cg, &leaf_probs);
        let Some(plan) = extract(&mut cg.eg, cg.root_class, &leaf_probs) else {
            return Verdict::Rejected;
        };
        (cone, plan, old_cost)
    };
    if old_cost - plan.cost <= cfg.min_gain {
        return Verdict::Rejected;
    }
    if quarantined_chains.contains(&plan.rules) {
        return Verdict::Rejected;
    }

    commit_plan(sess, root, &cone, &plan, old_cost, budget)
}

/// Stages the plan next to the old cone, proves the substitution, and
/// commits it — rolling everything back if any stage fails.
fn commit_plan(
    sess: &mut AnalysisSession,
    root: GateId,
    cone: &Cone,
    plan: &Plan,
    old_cost: f64,
    budget: &PassBudget,
) -> Verdict {
    // Constant drivers the plan references must exist before the
    // checkpoint so a rollback never strands a dangling tie cell.
    let needs = plan_const_needs(plan);
    let mut consts: [Option<GateId>; 2] = [None, None];
    for value in [false, true] {
        if needs[usize::from(value)] {
            consts[usize::from(value)] = Some(find_or_add_const(sess, value));
        }
    }

    // Conservative write set: the cone interior is swept, its leaves
    // and constants gain/lose fanout branches, and the root's sinks are
    // rewired. New gates sit above the checkpoint's id bound.
    let mut roots: Vec<GateId> = cone.gates.clone();
    roots.extend(cone.leaves.iter().copied());
    for &g in &cone.gates {
        roots.extend(sess.netlist().fanins(g).iter().copied());
    }
    roots.extend(consts.iter().flatten().copied());
    roots.extend(sess.netlist().fanouts(root).iter().map(|c| c.gate));
    roots.sort_unstable();
    roots.dedup();
    let power_before = sess.power();
    let scp = sess.checkpoint(&roots);

    // Stage the extraction next to the old cone.
    let b = match plan.root {
        Operand::Leaf(i) => cone.leaves[i as usize],
        Operand::Const(v) => consts[usize::from(v)].expect("resolved above"),
        Operand::Step(_) => {
            debug_assert!(!plan_root_is_existing(plan));
            let prefix = format!("eg{}", root.0);
            apply_plan(sess.netlist_mut(), plan, &cone.leaves, consts, &prefix)
        }
    };

    // Free counterexample check: the staged structure must agree with
    // the old root on every retained pattern. A mismatch means the
    // saturation produced an unsound plan — quarantine its rule chain.
    if b != root {
        let (_, values) = sess.signatures();
        if values.get(b) != values.get(root) {
            sess.rollback(scp);
            return Verdict::RolledBack(plan.rules.clone());
        }
    }

    let sub = Substitution::Os2 {
        a: root,
        b,
        invert: false,
    };
    {
        let (nl, _) = sess.analyses();
        if !sub.is_structurally_valid(nl) {
            sess.rollback(scp);
            return Verdict::Rejected;
        }
        obs::counter!(obs::names::PASSES_ATPG_CHECKS).inc();
        let outcome = {
            let _span = obs::span!(obs::names::span::PASSES_ATPG_CHECK);
            check_substitution(nl, &sub, budget.backtrack_limit)
        };
        match outcome {
            CheckOutcome::Permissible => {}
            CheckOutcome::NotPermissible(_) => {
                // The miter found a distinguishing pattern the retained
                // set missed: the plan is functionally wrong.
                sess.rollback(scp);
                return Verdict::RolledBack(plan.rules.clone());
            }
            CheckOutcome::Aborted => {
                sess.rollback(scp);
                return Verdict::Rejected;
            }
        }
    }

    sess.apply(&sub);
    // Retire whatever the substitution's sweep left behind (staged
    // steps whose output went unused never had fanouts).
    for &g in cone.gates.iter().rev() {
        if sess.netlist().is_live(g) && sess.netlist().fanouts(g).is_empty() {
            sess.sweep_dangling(g);
        }
    }

    // Guard: the modelled gain must materialize globally. The cone
    // model is exact over its leaves but blind to correlations outside,
    // so a regression is possible — roll it back and quarantine.
    let power_after = sess.power();
    if power_after < power_before - POWER_EPS {
        Verdict::Kept(plan.cost - old_cost)
    } else {
        sess.rollback(scp);
        Verdict::RolledBack(plan.rules.clone())
    }
}

/// A live constant-`value` driver: reuses an existing constant gate of
/// that polarity or creates a tie cell.
fn find_or_add_const(sess: &mut AnalysisSession, value: bool) -> GateId {
    let nl = sess.netlist();
    let existing = nl
        .iter_live()
        .find(|&g| matches!(nl.kind(g), GateKind::Const(v) if v == value));
    match existing {
        Some(g) => g,
        None => {
            let name = format!("tie{}", u8::from(value));
            sess.netlist_mut().add_const(name, value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionConfig;
    use powder_library::lib2;
    use powder_netlist::Netlist;
    use std::sync::Arc;

    /// `f = (a&b) | (a&c)`: factoring pulls `a` out, so the cone can be
    /// rebuilt as `a & (b|c)` — one fewer 2-input gate, strictly less
    /// input capacitance.
    fn factorable() -> Netlist {
        let lib = Arc::new(lib2());
        let and2 = lib.find_by_name("and2").unwrap();
        let or2 = lib.find_by_name("or2").unwrap();
        let mut nl = Netlist::new("factorable", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g1 = nl.add_cell("g1", and2, &[a, b]);
        let g2 = nl.add_cell("g2", and2, &[a, c]);
        let g3 = nl.add_cell("g3", or2, &[g1, g2]);
        nl.add_output("f", g3);
        nl
    }

    #[test]
    fn egraph_pass_factors_shared_literal() {
        let mut sess = AnalysisSession::new(factorable(), SessionConfig::default());
        let before = sess.power();
        let mut pass = EgraphPass::default();
        let report = pass.run(&mut sess, &PassBudget::default());
        let er = report.egraph.expect("egraph stats attached");
        assert!(er.cones > 0, "at least the output cone is explored");
        assert!(report.edits >= 1, "the factorable cone is rewritten");
        assert!(
            report.power_after < before - 1e-12,
            "power must strictly drop: {} -> {}",
            before,
            report.power_after
        );
        let nl = sess.into_netlist();
        nl.validate().unwrap();
    }

    #[test]
    fn egraph_pass_is_deterministic() {
        let run = || {
            let mut sess = AnalysisSession::new(factorable(), SessionConfig::default());
            let mut pass = EgraphPass::default();
            let report = pass.run(&mut sess, &PassBudget::default());
            let nl = sess.into_netlist();
            (report.edits, powder_netlist::blif::write_blif(&nl))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn egraph_pass_never_increases_power() {
        // A circuit with nothing to gain must be left untouched.
        let lib = Arc::new(lib2());
        let inv = lib.find_by_name("inv1").unwrap();
        let mut nl = Netlist::new("inv_only", lib);
        let a = nl.add_input("a");
        let g = nl.add_cell("g", inv, &[a]);
        nl.add_output("f", g);
        let mut sess = AnalysisSession::new(nl, SessionConfig::default());
        let before = sess.power();
        let mut pass = EgraphPass::default();
        let report = pass.run(&mut sess, &PassBudget::default());
        assert!(report.power_after <= before + 1e-12);
        sess.into_netlist().validate().unwrap();
    }
}
