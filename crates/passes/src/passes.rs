//! The built-in passes: `powder`, `sweep`, `resize`, `redundancy`.
//!
//! Every pass is a [`Transform`] over the shared [`AnalysisSession`]:
//! it consults the session's maintained analyses (power estimator,
//! simulation signatures, timing) and commits edits through the
//! session, which repairs those analyses over the dirty cone. None of
//! the passes rebuilds an analysis from scratch — the pipeline asserts
//! as much through the per-pass [`SessionStats`] deltas.
//!
//! [`SessionStats`]: powder_engine::SessionStats

use crate::session::AnalysisSession;
use crate::transform::{instrumented, PassBudget, PassReport, Transform};
use powder::gain::analyze_full;
use powder::resize::best_swap;
use powder::{DelayLimit, OptimizeConfig, Substitution};
use powder_atpg::{check_substitution, CheckOutcome};
use powder_netlist::{GateId, GateKind, Netlist};
use powder_obs as obs;
use std::collections::{BTreeMap, HashSet};

/// The POWDER permissible-substitution loop (the paper's Fig. 5),
/// run against the session's shared analyses.
#[derive(Clone, Debug, Default)]
pub struct PowderPass {
    /// Optimizer configuration for this invocation.
    pub config: OptimizeConfig,
}

impl PowderPass {
    /// A powder pass with the given optimizer configuration.
    #[must_use]
    pub fn new(config: OptimizeConfig) -> Self {
        PowderPass { config }
    }
}

impl Transform for PowderPass {
    fn name(&self) -> &str {
        "powder"
    }

    fn run(&mut self, sess: &mut AnalysisSession, budget: &PassBudget) -> PassReport {
        let mut config = self.config.clone();
        config.backtrack_limit = config.backtrack_limit.min(budget.backtrack_limit);
        if budget.stop.is_some() {
            config.stop = budget.stop.clone();
        }
        if budget.round_hook.is_some() {
            config.round_hook = budget.round_hook.clone();
        }
        // Resume support: a checkpointed pass re-runs only its remaining
        // work units (candidate rounds, or windows in windowed mode),
        // against the required time the interrupted invocation resolved
        // (re-resolving a Factor mid-run would move the goal).
        config.rounds_offset = budget.rounds_offset;
        if let Some(t) = budget.required_time {
            config.delay_limit = Some(DelayLimit::Absolute(t));
        }
        instrumented("powder", sess, |sess| {
            let report = sess.run_powder(&config);
            (report.applied.len(), Some(report))
        })
    }
}

/// Lazily-created constant drivers shared by the constant-tying passes.
#[derive(Default)]
struct TieConsts {
    gates: [Option<GateId>; 2],
}

impl TieConsts {
    /// The live constant-`value` driver, creating one on first use.
    fn get(&mut self, sess: &mut AnalysisSession, value: bool) -> GateId {
        match self.gates[usize::from(value)] {
            Some(k) if sess.netlist().is_live(k) => k,
            _ => {
                let name = format!("tie{}", u8::from(value));
                let k = sess.netlist_mut().add_const(name, value);
                self.gates[usize::from(value)] = Some(k);
                k
            }
        }
    }

    /// Sweeps whichever constants ended up with no fanout.
    fn sweep_unused(self, sess: &mut AnalysisSession) {
        for k in self.gates.into_iter().flatten() {
            if sess.netlist().is_live(k) && sess.netlist().fanouts(k).is_empty() {
                sess.sweep_dangling(k);
            }
        }
    }
}

/// Proves `sub` power-saving and permissible against the session's
/// analyses, applying it if so. Returns whether it was committed.
fn try_commit(sess: &mut AnalysisSession, sub: &Substitution, backtrack_limit: usize) -> bool {
    let (nl, est) = sess.analyses();
    if !sub.is_structurally_valid(nl) {
        return false;
    }
    // Monotonicity gate: passes in a pipeline never increase Σ C·E.
    if analyze_full(nl, est, sub).total() < -1e-12 {
        return false;
    }
    obs::counter!(obs::names::PASSES_ATPG_CHECKS).inc();
    let outcome = {
        let _span = obs::span!(obs::names::span::PASSES_ATPG_CHECK);
        check_substitution(nl, sub, backtrack_limit)
    };
    if outcome != CheckOutcome::Permissible {
        return false;
    }
    sess.apply(sub);
    true
}

/// Netlist cleanup: removes dangling logic, then uses the session's
/// simulation signatures to find constant and duplicate gates, proving
/// each suspicion exactly (ATPG) before rewiring. Iterates to a
/// fixpoint — merging duplicates can strand more logic.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepPass;

/// What a signature class suggests doing with one victim gate.
#[derive(Clone, Copy)]
enum SweepAction {
    /// The victim's signature is constant: tie its fanout to `value`.
    TieConst(GateId, bool),
    /// The victim's signature equals an earlier gate's: merge into it.
    Merge(GateId, GateId),
}

impl SweepPass {
    /// Live cell/const gates with no fanout (dangling roots). The tie
    /// constants are exempt while the pass runs: sweeping one after a
    /// failed tie attempt would register as progress and re-arm the
    /// same doomed suspicion, so the fixpoint loop would never exit.
    fn dangling(nl: &Netlist, keep: &TieConsts) -> Vec<GateId> {
        nl.iter_live()
            .filter(|&g| matches!(nl.kind(g), GateKind::Cell(_) | GateKind::Const(_)))
            .filter(|&g| nl.fanouts(g).is_empty() && !keep.gates.contains(&Some(g)))
            .collect()
    }

    /// Groups live non-output gates by simulation signature and plans
    /// one action per provable-looking victim. Deterministic: classes
    /// iterate in signature order, members in gate-id order.
    fn plan(nl: &Netlist, values: &powder_sim::SimValues, words: usize) -> Vec<SweepAction> {
        let mut classes: BTreeMap<&[u64], Vec<GateId>> = BTreeMap::new();
        for g in nl.iter_live() {
            if matches!(nl.kind(g), GateKind::Output) {
                continue;
            }
            classes.entry(values.get(g)).or_default().push(g);
        }
        let zeros = vec![0u64; words];
        let ones = vec![!0u64; words];
        let mut plan = Vec::new();
        for (sig, members) in &classes {
            let constant = if *sig == zeros.as_slice() {
                Some(false)
            } else if *sig == ones.as_slice() {
                Some(true)
            } else {
                None
            };
            if let Some(value) = constant {
                for &g in members {
                    if matches!(nl.kind(g), GateKind::Cell(_)) {
                        plan.push(SweepAction::TieConst(g, value));
                    }
                }
            } else if members.len() > 1 {
                let canon = members[0];
                for &g in &members[1..] {
                    if matches!(nl.kind(g), GateKind::Cell(_)) {
                        plan.push(SweepAction::Merge(g, canon));
                    }
                }
            }
        }
        plan
    }
}

impl Transform for SweepPass {
    fn name(&self) -> &str {
        "sweep"
    }

    fn run(&mut self, sess: &mut AnalysisSession, budget: &PassBudget) -> PassReport {
        instrumented("sweep", sess, |sess| {
            let mut edits = 0usize;
            let mut consts = TieConsts::default();
            // Suspicions that failed their exact proof. A signature
            // match that ATPG refuted will be suggested again verbatim
            // on the next iteration (the patterns don't change), so
            // re-checking it is pure waste — and re-arming a failed
            // constant tie is what used to keep the loop alive forever.
            let mut failed_const: HashSet<(GateId, bool)> = HashSet::new();
            let mut failed_merge: HashSet<(GateId, GateId)> = HashSet::new();
            loop {
                let mut changed = false;
                for g in Self::dangling(sess.netlist(), &consts) {
                    if edits >= budget.max_edits {
                        break;
                    }
                    if sess.netlist().is_live(g) {
                        let removed = sess.sweep_dangling(g).len();
                        if removed > 0 {
                            edits += removed;
                            changed = true;
                        }
                    }
                }
                let (nl, values) = sess.signatures();
                let words = values.words();
                let plan = Self::plan(nl, values, words);
                for action in plan {
                    if edits >= budget.max_edits {
                        break;
                    }
                    let sub = match action {
                        SweepAction::TieConst(victim, value) => {
                            if !sess.netlist().is_live(victim)
                                || failed_const.contains(&(victim, value))
                            {
                                continue;
                            }
                            let b = consts.get(sess, value);
                            Substitution::Os2 {
                                a: victim,
                                b,
                                invert: false,
                            }
                        }
                        SweepAction::Merge(victim, canon) => {
                            if !sess.netlist().is_live(victim)
                                || !sess.netlist().is_live(canon)
                                || failed_merge.contains(&(victim, canon))
                            {
                                continue;
                            }
                            Substitution::Os2 {
                                a: victim,
                                b: canon,
                                invert: false,
                            }
                        }
                    };
                    if try_commit(sess, &sub, budget.backtrack_limit) {
                        edits += 1;
                        changed = true;
                    } else {
                        match action {
                            SweepAction::TieConst(victim, value) => {
                                failed_const.insert((victim, value));
                            }
                            SweepAction::Merge(victim, canon) => {
                                failed_merge.insert((victim, canon));
                            }
                        }
                    }
                }
                if !changed || edits >= budget.max_edits {
                    break;
                }
            }
            consts.sweep_unused(sess);
            (edits, None)
        })
    }
}

/// ATPG redundancy removal through the shared session: ties provably
/// redundant gate-input pins to constants (each tie is an IS2 whose
/// source is a constant driver, proven by the same cone-local miter as
/// POWDER's substitutions) and sweeps the logic that dangles.
///
/// Unlike the standalone [`powder::redundancy::remove_redundancies`],
/// this pass also requires each tie to be non-increasing in `Σ C·E`,
/// keeping any pipeline ordering monotone in power.
#[derive(Clone, Copy, Debug, Default)]
pub struct RedundancyPass;

impl Transform for RedundancyPass {
    fn name(&self) -> &str {
        "redundancy"
    }

    fn run(&mut self, sess: &mut AnalysisSession, budget: &PassBudget) -> PassReport {
        instrumented("redundancy", sess, |sess| {
            let mut edits = 0usize;
            let mut consts = TieConsts::default();
            // Pins whose tie was refuted. Later edits could in
            // principle make such a pin redundant, but re-paying the
            // ATPG budget for every refuted pin on every re-scan is
            // what the cache avoids; skipping only forgoes an optional
            // tie, never correctness.
            let mut failed: HashSet<(GateId, u32, bool)> = HashSet::new();
            loop {
                let mut changed = false;
                let gates: Vec<GateId> = sess
                    .netlist()
                    .iter_live()
                    .filter(|&g| matches!(sess.netlist().kind(g), GateKind::Cell(_)))
                    .collect();
                'gates: for g in gates {
                    if edits >= budget.max_edits {
                        break;
                    }
                    if !sess.netlist().is_live(g) {
                        continue;
                    }
                    for pin in 0..sess.netlist().fanins(g).len() as u32 {
                        let driver = sess.netlist().fanins(g)[pin as usize];
                        if matches!(sess.netlist().kind(driver), GateKind::Const(_)) {
                            continue;
                        }
                        for value in [false, true] {
                            if failed.contains(&(g, pin, value)) {
                                continue;
                            }
                            let b = consts.get(sess, value);
                            let sub = Substitution::Is2 {
                                sink: g,
                                pin,
                                b,
                                invert: false,
                            };
                            if try_commit(sess, &sub, budget.backtrack_limit) {
                                edits += 1;
                                changed = true;
                                continue 'gates;
                            }
                            failed.insert((g, pin, value));
                        }
                    }
                }
                if !changed || edits >= budget.max_edits {
                    break;
                }
            }
            consts.sweep_unused(sess);
            (edits, None)
        })
    }
}

/// Gate resizing for power through the shared session: for each cell
/// gate, picks the functionally identical library cell with the lowest
/// input-pin switched capacitance whose extra delay fits the slack at
/// a fixed required time.
///
/// Where the standalone [`powder::resize::resize_for_power`] rebuilds
/// timing and power from scratch per gate, this pass reads both from
/// the session: timing is built once (pinned to the required time) and
/// repaired incrementally after each swap.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResizePass {
    /// Absolute required time for the slack computation; `None` pins it
    /// to the circuit delay measured when the pass starts (resizing
    /// then never degrades the critical path).
    pub required_time: Option<f64>,
}

impl ResizePass {
    /// A resize pass constrained to the given required time.
    #[must_use]
    pub fn new(required_time: Option<f64>) -> Self {
        ResizePass { required_time }
    }
}

impl Transform for ResizePass {
    fn name(&self) -> &str {
        "resize"
    }

    fn run(&mut self, sess: &mut AnalysisSession, budget: &PassBudget) -> PassReport {
        instrumented("resize", sess, |sess| {
            let required = match self.required_time {
                Some(t) => t,
                None => sess.delay(),
            };
            let gates: Vec<GateId> = sess
                .netlist()
                .iter_live()
                .filter(|&g| matches!(sess.netlist().kind(g), GateKind::Cell(_)))
                .collect();
            let mut edits = 0usize;
            for g in gates {
                if edits >= budget.max_edits {
                    break;
                }
                if !sess.netlist().is_live(g) {
                    continue;
                }
                let (nl, est, sta) = sess.timed_analyses(required);
                if let Some(cell) = best_swap(nl, est, sta, g) {
                    sess.swap_gate_cell(g, cell);
                    edits += 1;
                }
            }
            (edits, None)
        })
    }
}
