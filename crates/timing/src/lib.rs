//! Static timing analysis with the paper's linear gate delay model
//! (Section 2): the delay of gate `s` is `D(s) = τ(s) + C(s)·R(s)` where
//! `C(s)` is the capacitive load at the output of `s` and `R(s)` the drive
//! resistance. Arrival and required times follow, and the circuit delay is
//! the maximum primary-output arrival time.
//!
//! [`TimingAnalysis::check_substitution`] implements the two delay checks of
//! Section 3.4 used by POWDER's delay-constraint mode:
//!
//! 1. the (possibly gate-augmented) substituting signal's arrival, after
//!    accounting for the extra load it must drive, must not exceed the
//!    required time of the substituted signal;
//! 2. the extra load on the substituting signal must not push any existing
//!    path through it beyond its required time.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use powder_library::lib2;
//! use powder_netlist::Netlist;
//! use powder_timing::{TimingAnalysis, TimingConfig};
//!
//! let lib = Arc::new(lib2());
//! let inv = lib.find_by_name("inv1").unwrap();
//! let mut nl = Netlist::new("chain", lib);
//! let a = nl.add_input("a");
//! let g1 = nl.add_cell("g1", inv, &[a]);
//! let g2 = nl.add_cell("g2", inv, &[g1]);
//! nl.add_output("f", g2);
//! let sta = TimingAnalysis::new(&nl, &TimingConfig::default());
//! assert!(sta.circuit_delay() > 0.0);
//! assert!(sta.arrival(g2) > sta.arrival(g1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use powder_netlist::{DirtyRegion, GateId, GateKind, Netlist};

/// Configuration of the timing model.
#[derive(Clone, Debug)]
pub struct TimingConfig {
    /// Capacitive load presented by each primary output.
    pub output_load: f64,
    /// Required time at the primary outputs; `None` uses the computed
    /// circuit delay (zero-slack on the critical path).
    pub required_time: Option<f64>,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            output_load: 1.0,
            required_time: None,
        }
    }
}

/// A proposed rewiring, for the what-if delay check.
#[derive(Clone, Copy, Debug)]
pub struct SubstitutionTiming {
    /// Required time of the substituted signal (stem `a` for OS2/OS3, the
    /// branch's sink view for IS2/IS3) — computed by the caller via
    /// [`TimingAnalysis::required`] or
    /// [`TimingAnalysis::branch_required`].
    pub required_at_a: f64,
    /// The substituting signal `b`.
    pub b: GateId,
    /// Extra capacitance the substitution adds to `b`'s stem.
    pub extra_cap_on_b: f64,
    /// Delay of a newly inserted gate (OS3/IS3), with its output load
    /// already folded in; 0 for OS2/IS2.
    pub new_gate_delay: f64,
    /// Second driving signal of a new gate, if any (OS3/IS3).
    pub c: Option<(GateId, f64)>,
}

/// Arrival/required times for a netlist snapshot.
#[derive(Clone, Debug)]
pub struct TimingAnalysis {
    arrivals: Vec<f64>,
    requireds: Vec<f64>,
    gate_delay: Vec<f64>,
    drive_res: Vec<f64>,
    circuit_delay: f64,
    required_time: f64,
    output_load: f64,
    /// Whether the required time was fixed by the caller (`Some` in the
    /// config). Only a fixed required time survives incremental updates:
    /// a floating one tracks the circuit delay and would rescale every
    /// required time on each edit.
    fixed_required: bool,
}

impl TimingAnalysis {
    /// Runs a full STA pass over `nl`.
    #[must_use]
    pub fn new(nl: &Netlist, config: &TimingConfig) -> Self {
        let bound = nl.id_bound();
        let mut arrivals = vec![0.0; bound];
        let mut gate_delay = vec![0.0; bound];
        let mut drive_res = vec![0.0; bound];
        let order = nl.topo_order();
        for &id in &order {
            match nl.kind(id) {
                GateKind::Input | GateKind::Const(_) => {
                    arrivals[id.0 as usize] = 0.0;
                }
                GateKind::Output => {
                    arrivals[id.0 as usize] = arrivals[nl.fanins(id)[0].0 as usize];
                }
                GateKind::Cell(c) => {
                    let cell = nl.library().cell_ref(c);
                    let load = nl.load_cap(id, config.output_load);
                    let d = cell.delay(load);
                    gate_delay[id.0 as usize] = d;
                    drive_res[id.0 as usize] = cell.drive_res;
                    let arr_in = nl
                        .fanins(id)
                        .iter()
                        .map(|f| arrivals[f.0 as usize])
                        .fold(0.0, f64::max);
                    arrivals[id.0 as usize] = arr_in + d;
                }
            }
        }
        let circuit_delay = nl
            .outputs()
            .iter()
            .map(|o| arrivals[o.0 as usize])
            .fold(0.0, f64::max);
        let required_time = config.required_time.unwrap_or(circuit_delay);

        let mut requireds = vec![f64::INFINITY; bound];
        for &o in nl.outputs() {
            requireds[o.0 as usize] = required_time;
        }
        for &id in order.iter().rev() {
            match nl.kind(id) {
                GateKind::Output => {
                    let src = nl.fanins(id)[0];
                    let r = requireds[id.0 as usize];
                    let slot = &mut requireds[src.0 as usize];
                    *slot = slot.min(r);
                }
                GateKind::Input | GateKind::Const(_) | GateKind::Cell(_) => {
                    // Required time of each fanin: required(id) − delay(id).
                    let r = requireds[id.0 as usize];
                    let d = gate_delay[id.0 as usize];
                    for &f in nl.fanins(id) {
                        let slot = &mut requireds[f.0 as usize];
                        *slot = slot.min(r - d);
                    }
                }
            }
        }
        TimingAnalysis {
            arrivals,
            requireds,
            gate_delay,
            drive_res,
            circuit_delay,
            required_time,
            output_load: config.output_load,
            fixed_required: config.required_time.is_some(),
        }
    }

    /// The configuration this analysis was built with.
    #[must_use]
    pub fn config(&self) -> TimingConfig {
        TimingConfig {
            output_load: self.output_load,
            required_time: self.fixed_required.then_some(self.required_time),
        }
    }

    /// Incrementally refreshes the analysis after the journaled edits in
    /// `region`: arrivals (and gate delays) are recomputed over the
    /// dirty cone — the touched gates plus their transitive fanout —
    /// and required times over the cone plus its transitive fanin,
    /// reusing the stored values at the unaffected frontier. Runs in
    /// time proportional to the affected region, not the netlist.
    ///
    /// Only valid when the required time is fixed
    /// (`TimingConfig::required_time` was `Some`); with a floating
    /// required time every slack depends on the global circuit delay, so
    /// this falls back to a full rebuild.
    pub fn update(&mut self, nl: &Netlist, region: &DirtyRegion) {
        if !self.fixed_required {
            *self = Self::new(nl, &self.config());
            return;
        }
        let bound = nl.id_bound();
        if self.arrivals.len() < bound {
            self.arrivals.resize(bound, 0.0);
            self.requireds.resize(bound, f64::INFINITY);
            self.gate_delay.resize(bound, 0.0);
            self.drive_res.resize(bound, 0.0);
        }
        for &id in region.removed() {
            let i = id.0 as usize;
            self.arrivals[i] = 0.0;
            self.requireds[i] = f64::INFINITY;
            self.gate_delay[i] = 0.0;
            self.drive_res[i] = 0.0;
        }

        // Forward: arrivals over the dirty cone, in topological order.
        // Fanins outside the cone have valid stored arrivals.
        let cone = nl.dirty_cone(region);
        for &id in &cone {
            match nl.kind(id) {
                GateKind::Input | GateKind::Const(_) => {
                    self.arrivals[id.0 as usize] = 0.0;
                }
                GateKind::Output => {
                    self.arrivals[id.0 as usize] = self.arrivals[nl.fanins(id)[0].0 as usize];
                }
                GateKind::Cell(c) => {
                    let cell = nl.library().cell_ref(c);
                    let load = nl.load_cap(id, self.output_load);
                    let d = cell.delay(load);
                    self.gate_delay[id.0 as usize] = d;
                    self.drive_res[id.0 as usize] = cell.drive_res;
                    let arr_in = nl
                        .fanins(id)
                        .iter()
                        .map(|f| self.arrivals[f.0 as usize])
                        .fold(0.0, f64::max);
                    self.arrivals[id.0 as usize] = arr_in + d;
                }
            }
        }
        self.circuit_delay = nl
            .outputs()
            .iter()
            .map(|o| self.arrivals[o.0 as usize])
            .fold(0.0, f64::max);

        // Backward: required times change only inside the cone and its
        // transitive fanin. Collect that closure (it is closed under
        // fanins), seed each member from its unaffected sinks, and
        // propagate in reverse topological order via Kahn's algorithm on
        // the member-internal fanout counts.
        let mut in_region = vec![false; bound];
        let mut members = cone;
        for &id in &members {
            in_region[id.0 as usize] = true;
        }
        let mut head = 0;
        while head < members.len() {
            let g = members[head];
            head += 1;
            for &f in nl.fanins(g) {
                if !in_region[f.0 as usize] {
                    in_region[f.0 as usize] = true;
                    members.push(f);
                }
            }
        }
        let mut outdeg = vec![0u32; bound];
        for &g in &members {
            let i = g.0 as usize;
            outdeg[i] = nl
                .fanouts(g)
                .iter()
                .filter(|c| in_region[c.gate.0 as usize])
                .count() as u32;
            self.requireds[i] = if matches!(nl.kind(g), GateKind::Output) {
                self.required_time
            } else {
                nl.fanouts(g)
                    .iter()
                    .filter(|c| !in_region[c.gate.0 as usize])
                    .map(|c| {
                        let s = c.gate.0 as usize;
                        self.requireds[s] - self.gate_delay[s]
                    })
                    .fold(f64::INFINITY, f64::min)
            };
        }
        let mut stack: Vec<GateId> = members
            .iter()
            .copied()
            .filter(|g| outdeg[g.0 as usize] == 0)
            .collect();
        let mut processed = 0usize;
        while let Some(g) = stack.pop() {
            processed += 1;
            let r = self.requireds[g.0 as usize];
            let d = self.gate_delay[g.0 as usize];
            for &f in nl.fanins(g) {
                let i = f.0 as usize;
                let slot = &mut self.requireds[i];
                *slot = slot.min(r - d);
                outdeg[i] -= 1;
                if outdeg[i] == 0 {
                    stack.push(f);
                }
            }
        }
        debug_assert_eq!(processed, members.len(), "cycle in required-time region");
    }

    /// Arrival time at the output of `id`.
    #[must_use]
    pub fn arrival(&self, id: GateId) -> f64 {
        self.arrivals[id.0 as usize]
    }

    /// Required time at the output of `id` (`+∞` for dangling gates).
    #[must_use]
    pub fn required(&self, id: GateId) -> f64 {
        self.requireds[id.0 as usize]
    }

    /// Slack at `id`.
    #[must_use]
    pub fn slack(&self, id: GateId) -> f64 {
        self.required(id) - self.arrival(id)
    }

    /// Required time seen by one branch `(sink, its own required − delay)`:
    /// looser than the stem's required time when other branches are more
    /// critical.
    #[must_use]
    pub fn branch_required(&self, nl: &Netlist, sink: GateId) -> f64 {
        match nl.kind(sink) {
            GateKind::Output => self.requireds[sink.0 as usize],
            _ => self.requireds[sink.0 as usize] - self.gate_delay[sink.0 as usize],
        }
    }

    /// Delay of gate `id` under its current load.
    #[must_use]
    pub fn gate_delay(&self, id: GateId) -> f64 {
        self.gate_delay[id.0 as usize]
    }

    /// The circuit delay (max primary-output arrival).
    #[must_use]
    pub fn circuit_delay(&self) -> f64 {
        self.circuit_delay
    }

    /// The required time applied at the primary outputs.
    #[must_use]
    pub fn required_time(&self) -> f64 {
        self.required_time
    }

    /// The two delay checks of Section 3.4. Returns `true` if the
    /// substitution *cannot* violate the timing constraint (conservative:
    /// load relief on the substituted signal is ignored).
    #[must_use]
    pub fn check_substitution(&self, sub: &SubstitutionTiming) -> bool {
        let eps = 1e-9;
        // Extra delay each loaded driver suffers. When both `b` and `c` are
        // loaded, one may lie in the other's transitive fanout, in which
        // case its arrival inherits the other's penalty too — so the
        // conservative bound applies the *combined* penalty to every path.
        let b_penalty = self.drive_res[sub.b.0 as usize] * sub.extra_cap_on_b;
        let c_penalty = sub
            .c
            .map_or(0.0, |(c, cap)| self.drive_res[c.0 as usize] * cap);
        let penalty = b_penalty + c_penalty;
        // Check 2: existing paths through b still meet their required times.
        if self.arrival(sub.b) + penalty > self.required(sub.b) + eps {
            return false;
        }
        // Check 1: the new path into the substituted signal's sinks.
        let new_arrival = self.arrival(sub.b) + penalty + sub.new_gate_delay;
        if new_arrival > sub.required_at_a + eps {
            return false;
        }
        // Checks for the second driver of a new gate.
        if let Some((c, _)) = sub.c {
            if self.arrival(c) + penalty > self.required(c) + eps {
                return false;
            }
            let new_arrival_c = self.arrival(c) + penalty + sub.new_gate_delay;
            if new_arrival_c > sub.required_at_a + eps {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powder_library::lib2;
    use std::sync::Arc;

    /// The parallel evaluation engine may consult timing analysis from
    /// worker threads by shared reference; these bounds are part of
    /// the API.
    #[test]
    fn timing_analysis_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TimingAnalysis>();
        assert_send_sync::<TimingConfig>();
    }

    fn chain() -> (Netlist, Vec<GateId>) {
        let lib = Arc::new(lib2());
        let inv = lib.find_by_name("inv1").unwrap();
        let and2 = lib.find_by_name("and2").unwrap();
        let mut nl = Netlist::new("c", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_cell("g1", inv, &[a]);
        let g2 = nl.add_cell("g2", inv, &[g1]);
        let g3 = nl.add_cell("g3", and2, &[g2, b]);
        let po = nl.add_output("f", g3);
        (nl, vec![a, b, g1, g2, g3, po])
    }

    #[test]
    fn arrivals_accumulate_along_paths() {
        let (nl, ids) = chain();
        let sta = TimingAnalysis::new(&nl, &TimingConfig::default());
        // g1 drives one inv pin (cap 1): d1 = 0.9 + 0.3*1 = 1.2
        assert!((sta.arrival(ids[2]) - 1.2).abs() < 1e-9);
        // g2 drives one and2 pin (cap 1): d2 = 1.2; arrival = 2.4
        assert!((sta.arrival(ids[3]) - 2.4).abs() < 1e-9);
        // g3 drives PO (load 1): d3 = 1.6 + 0.25 = 1.85; arrival 4.25
        assert!((sta.arrival(ids[4]) - 4.25).abs() < 1e-9);
        assert!((sta.circuit_delay() - 4.25).abs() < 1e-9);
    }

    #[test]
    fn critical_path_has_zero_slack() {
        let (nl, ids) = chain();
        let sta = TimingAnalysis::new(&nl, &TimingConfig::default());
        for id in [ids[0], ids[2], ids[3], ids[4]] {
            assert!(
                sta.slack(id).abs() < 1e-9,
                "gate {id} slack {}",
                sta.slack(id)
            );
        }
        // b is off-critical: slack = required(b) − 0 = (4.25−1.85)
        assert!(sta.slack(ids[1]) > 1.0);
    }

    #[test]
    fn relaxed_required_time_gives_slack() {
        let (nl, ids) = chain();
        let cfg = TimingConfig {
            output_load: 1.0,
            required_time: Some(10.0),
        };
        let sta = TimingAnalysis::new(&nl, &cfg);
        assert!((sta.slack(ids[4]) - 5.75).abs() < 1e-9);
        assert!((sta.required_time() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn check_substitution_accepts_slack_and_rejects_critical() {
        let (nl, ids) = chain();
        let sta = TimingAnalysis::new(&nl, &TimingConfig::default());
        // Substitute something required at the very end by b (huge slack):
        let ok = sta.check_substitution(&SubstitutionTiming {
            required_at_a: sta.required(ids[3]),
            b: ids[1],
            extra_cap_on_b: 1.0,
            new_gate_delay: 0.0,
            c: None,
        });
        assert!(ok);
        // Substitute a signal required very early by the critical g2:
        let bad = sta.check_substitution(&SubstitutionTiming {
            required_at_a: 0.5,
            b: ids[3],
            extra_cap_on_b: 1.0,
            new_gate_delay: 0.0,
            c: None,
        });
        assert!(!bad);
    }

    #[test]
    fn check_substitution_load_penalty_on_critical_b() {
        let (nl, ids) = chain();
        let sta = TimingAnalysis::new(&nl, &TimingConfig::default());
        // g2 is on the critical path with zero slack: any extra load on it
        // violates check 2 even if the substituted signal is uncritical.
        let bad = sta.check_substitution(&SubstitutionTiming {
            required_at_a: f64::INFINITY,
            b: ids[3],
            extra_cap_on_b: 2.0,
            new_gate_delay: 0.0,
            c: None,
        });
        assert!(!bad);
    }

    #[test]
    fn new_gate_delay_counts() {
        let (nl, ids) = chain();
        let sta = TimingAnalysis::new(&nl, &TimingConfig::default());
        let ok = sta.check_substitution(&SubstitutionTiming {
            required_at_a: sta.arrival(ids[1]) + 2.0,
            b: ids[1],
            extra_cap_on_b: 1.0,
            new_gate_delay: 1.9,
            c: None,
        });
        assert!(ok);
        let bad = sta.check_substitution(&SubstitutionTiming {
            required_at_a: sta.arrival(ids[1]) + 2.0,
            b: ids[1],
            extra_cap_on_b: 1.0,
            new_gate_delay: 2.1,
            c: None,
        });
        assert!(!bad);
    }

    fn assert_matches_full(nl: &Netlist, sta: &TimingAnalysis) {
        let full = TimingAnalysis::new(nl, &sta.config());
        assert!(
            (sta.circuit_delay() - full.circuit_delay()).abs() < 1e-9,
            "circuit delay {} vs {}",
            sta.circuit_delay(),
            full.circuit_delay()
        );
        for id in nl.iter_live() {
            assert!(
                (sta.arrival(id) - full.arrival(id)).abs() < 1e-9,
                "arrival mismatch at {id}: {} vs {}",
                sta.arrival(id),
                full.arrival(id)
            );
            let (ri, rf) = (sta.required(id), full.required(id));
            assert!(
                (ri - rf).abs() < 1e-9 || (ri.is_infinite() && rf.is_infinite()),
                "required mismatch at {id}: {ri} vs {rf}"
            );
        }
    }

    #[test]
    fn incremental_update_matches_full_rebuild() {
        let (mut nl, ids) = chain();
        let cfg = TimingConfig {
            output_load: 1.0,
            required_time: Some(10.0),
        };
        let mut sta = TimingAnalysis::new(&nl, &cfg);
        nl.drain_dirty();
        // Rewire g3's first pin from g2 to g1, sweep the dangling g2.
        nl.replace_fanin(ids[4], 0, ids[2]);
        nl.sweep_from(ids[3]);
        let region = nl.drain_dirty();
        sta.update(&nl, &region);
        assert_matches_full(&nl, &sta);
    }

    #[test]
    fn incremental_update_covers_new_gates() {
        let (mut nl, ids) = chain();
        let cfg = TimingConfig {
            output_load: 1.0,
            required_time: Some(20.0),
        };
        let mut sta = TimingAnalysis::new(&nl, &cfg);
        nl.drain_dirty();
        // Insert a fresh inverter between g1 and g2 (new id past the
        // original bound).
        let lib = nl.library().clone();
        let inv = lib.find_by_name("inv1").unwrap();
        let g = nl.add_cell("late", inv, &[ids[2]]);
        nl.replace_fanin(ids[3], 0, g);
        let region = nl.drain_dirty();
        sta.update(&nl, &region);
        assert_matches_full(&nl, &sta);
        assert!(sta.arrival(g) > sta.arrival(ids[2]));
    }

    #[test]
    fn update_with_floating_required_falls_back_to_full() {
        let (mut nl, ids) = chain();
        let mut sta = TimingAnalysis::new(&nl, &TimingConfig::default());
        nl.drain_dirty();
        nl.replace_fanin(ids[4], 0, ids[2]);
        nl.sweep_from(ids[3]);
        let region = nl.drain_dirty();
        sta.update(&nl, &region);
        // Floating required time tracks the (now shorter) circuit delay.
        let full = TimingAnalysis::new(&nl, &TimingConfig::default());
        assert!((sta.required_time() - full.required_time()).abs() < 1e-9);
        assert_matches_full(&nl, &sta);
    }

    #[test]
    fn branch_required_looser_than_stem() {
        let lib = Arc::new(lib2());
        let inv = lib.find_by_name("inv1").unwrap();
        let and2 = lib.find_by_name("and2").unwrap();
        let mut nl = Netlist::new("t", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        // a fans out to a long chain (critical) and to a single AND (loose).
        let g1 = nl.add_cell("g1", inv, &[a]);
        let g2 = nl.add_cell("g2", inv, &[g1]);
        let g3 = nl.add_cell("g3", inv, &[g2]);
        let g4 = nl.add_cell("g4", and2, &[a, b]);
        nl.add_output("f1", g3);
        nl.add_output("f2", g4);
        let sta = TimingAnalysis::new(&nl, &TimingConfig::default());
        let stem_req = sta.required(a);
        let loose_req = sta.branch_required(&nl, g4);
        assert!(loose_req > stem_req + 0.5, "{loose_req} vs {stem_req}");
    }
}
